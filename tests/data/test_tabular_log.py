"""TabularLog: grow-in-place appends equal a full rebuild.

Mirrors ``tests/data/test_incremental_index.py`` for the tabular side:
a log grown by arbitrary chunked appends must be indistinguishable --
rows, labels, columns, partition counts, induced models -- from a
:class:`TabularDataset` built from all the rows at once.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attribute import AttributeSpace, numeric
from repro.core.model import PartitionStructure
from repro.core.predicate import interval_constraint
from repro.data.tabular import TabularDataset
from repro.errors import InvalidParameterError, SchemaError
from repro.stream.chunks import TabularLog

SPACE = AttributeSpace(
    (numeric("age", 0.0, 1.0), numeric("height", 0.0, 1.0)),
    class_labels=(0, 1),
)
UNLABELLED = AttributeSpace((numeric("age", 0.0, 1.0),))


def _structure():
    low = interval_constraint("age", hi=0.5)
    high = interval_constraint("age", lo=0.5)

    def assigner(dataset):
        return (dataset.column("age") >= 0.5).astype(np.int64)

    return PartitionStructure(
        cells=(low, high), class_labels=(0, 1), assigner=assigner
    )


rows_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.999),
        st.floats(min_value=0.0, max_value=0.999),
        st.integers(min_value=0, max_value=1),
    ),
    max_size=80,
)


@st.composite
def chunked_rows(draw):
    """A row bag plus an arbitrary in-order chunking."""
    rows = draw(rows_strategy)
    cuts = draw(
        st.lists(st.integers(min_value=0, max_value=len(rows)), max_size=5)
    )
    bounds = sorted(set(cuts) | {0, len(rows)})
    chunks = [rows[lo:hi] for lo, hi in zip(bounds, bounds[1:])]
    return rows, chunks


def _arrays(rows):
    X = np.array([[a, h] for a, h, _ in rows]).reshape(-1, 2)
    y = np.array([label for _, _, label in rows], dtype=np.int64)
    return X, y


class TestAppendEqualsRebuild:
    @given(data=chunked_rows())
    @settings(max_examples=60, deadline=None)
    def test_appended_log_equals_full_build(self, data):
        rows, chunks = data
        log = TabularLog(SPACE, capacity=1)  # force many capacity doublings
        for chunk in chunks:
            X, y = _arrays(chunk)
            log.append(X, y)
        X_all, y_all = _arrays(rows)
        full = TabularDataset(SPACE, X_all, y_all)
        assert len(log) == len(full)
        np.testing.assert_array_equal(log.X, full.X)
        np.testing.assert_array_equal(log.y, full.y)
        structure = _structure()
        np.testing.assert_array_equal(
            structure.counts(log), structure.counts(full)
        )

    @given(data=chunked_rows())
    @settings(max_examples=30, deadline=None)
    def test_dataset_chunk_appends_equal_array_appends(self, data):
        rows, chunks = data
        by_arrays = TabularLog(SPACE, capacity=4)
        by_datasets = TabularLog(SPACE, capacity=4)
        for chunk in chunks:
            X, y = _arrays(chunk)
            by_arrays.append(X, y)
            by_datasets.append(TabularDataset(SPACE, X, y))
        np.testing.assert_array_equal(by_arrays.X, by_datasets.X)
        np.testing.assert_array_equal(by_arrays.y, by_datasets.y)

    def test_snapshot_is_decoupled_from_growth(self):
        log = TabularLog(UNLABELLED, capacity=1)
        log.append(np.array([[0.1], [0.2]]))
        snapshot = log.to_dataset()
        log.append(np.array([[0.9]]))
        assert len(snapshot) == 2  # unaffected by the later append
        assert len(log) == 3
        np.testing.assert_array_equal(log.X[:2], snapshot.X)


class TestLogQuacksLikeADataset:
    def test_columns_and_column_views(self):
        log = TabularLog(SPACE)
        log.append(np.array([[0.1, 0.6], [0.8, 0.2]]), np.array([0, 1]))
        np.testing.assert_array_equal(log.column("age"), [0.1, 0.8])
        np.testing.assert_array_equal(log.columns["height"], [0.6, 0.2])
        with pytest.raises(SchemaError):
            log.column("weight")

    def test_predicate_mask_and_slices(self):
        log = TabularLog(SPACE)
        log.append(
            np.array([[0.1, 0.6], [0.8, 0.2], [0.6, 0.9]]),
            np.array([0, 1, 1]),
        )
        mask = log.predicate_mask(interval_constraint("age", lo=0.5))
        assert mask.tolist() == [False, True, True]
        window = log.slice_rows(1, 3)
        assert len(window) == 2
        taken = log.take([2, 0])
        np.testing.assert_array_equal(taken.y, [1, 0])

    def test_model_induction_over_live_log(self):
        from repro.core.dtree_model import DtModel
        from repro.mining.tree.builder import TreeParams

        rng = np.random.default_rng(4)
        log = TabularLog(SPACE, capacity=8)
        for _ in range(3):
            X = rng.uniform(0, 1, size=(60, 2))
            y = (X[:, 0] >= 0.5).astype(np.int64)
            log.append(X, y)
            model = DtModel.fit(log, TreeParams(max_depth=3, min_leaf=5))
            counts = model.structure.counts(log)
            assert counts.sum() == len(log)


class TestValidation:
    def test_missing_labels_rejected(self):
        log = TabularLog(SPACE)
        with pytest.raises(SchemaError):
            log.append(np.array([[0.1, 0.2]]))

    def test_unexpected_labels_rejected(self):
        log = TabularLog(UNLABELLED)
        with pytest.raises(SchemaError):
            log.append(np.array([[0.1]]), np.array([0]))

    def test_wrong_width_rejected(self):
        log = TabularLog(SPACE)
        with pytest.raises(SchemaError):
            log.append(np.array([[0.1]]), np.array([0]))

    def test_space_mismatch_rejected(self):
        log = TabularLog(SPACE)
        other = TabularDataset(
            UNLABELLED, np.array([[0.1]])
        )
        with pytest.raises(SchemaError):
            log.append(other)

    def test_double_labels_rejected(self):
        log = TabularLog(SPACE)
        chunk = TabularDataset(
            SPACE, np.array([[0.1, 0.2]]), np.array([0])
        )
        with pytest.raises(InvalidParameterError):
            log.append(chunk, np.array([0]))

    def test_capacity_validation(self):
        with pytest.raises(InvalidParameterError):
            TabularLog(SPACE, capacity=0)
