"""Public-API integration tests: __all__ resolves, end-to-end walkthrough."""

from __future__ import annotations

import numpy as np
import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_alls_resolve(self):
        import repro.core
        import repro.data
        import repro.experiments
        import repro.fleet
        import repro.mining
        import repro.obs
        import repro.stats
        import repro.stream

        for module in (
            repro.core, repro.data, repro.fleet, repro.mining, repro.obs,
            repro.stats, repro.stream, repro.experiments,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestEndToEndWalkthrough:
    """The README quickstart, condensed, as a regression test."""

    def test_lits_pipeline(self):
        rng = np.random.default_rng(7)
        d1 = repro.generate_basket(
            1_000, n_items=60, avg_transaction_len=6, n_patterns=60,
            avg_pattern_len=3, rng=rng,
        )
        d2 = repro.generate_basket(
            1_000, n_items=60, avg_transaction_len=6, n_patterns=60,
            avg_pattern_len=5, rng=rng,
        )
        m1 = repro.LitsModel.mine(d1, 0.03, max_len=2)
        m2 = repro.LitsModel.mine(d2, 0.03, max_len=2)

        result = repro.deviation(m1, m2, d1, d2)
        bound = repro.upper_bound_deviation(m1, m2)
        assert 0 < result.value <= bound.value + 1e-9

        sig = repro.deviation_significance(
            d1, d2, lambda d: repro.LitsModel.mine(d, 0.03, max_len=2),
            n_boot=10, rng=rng,
        )
        assert sig.significance_percent >= 90.0

    def test_dt_pipeline(self):
        old = repro.generate_classification(1_500, function=1, seed=1)
        new = repro.generate_classification(1_500, function=2, seed=2)
        t_old = repro.DtModel.fit(old)
        t_new = repro.DtModel.fit(new)

        whole = repro.deviation(t_old, t_new, old, new).value
        focussed = repro.focussed_deviation(
            t_old, t_new, old, new, repro.box_focus(age=(None, 30))
        ).value
        assert 0 <= focussed <= whole

        me = repro.misclassification_error_via_focus(t_old, new)
        assert me == pytest.approx(repro.misclassification_error(t_old, new))

    def test_monitor_and_grouping_pipeline(self):
        datasets = [
            repro.generate_basket(
                500, n_items=50, avg_transaction_len=5, n_patterns=40,
                avg_pattern_len=plen, seed=s,
            )
            for s, plen in ((1, 3), (2, 3), (3, 5), (4, 5))
        ]
        models = [repro.LitsModel.mine(d, 0.05, max_len=2) for d in datasets]
        matrix = repro.upper_bound_matrix(models)
        groups = repro.group_stores(matrix, 2)
        assert len(groups) == 2

        coords = repro.classical_mds(matrix, k=2)
        assert coords.shape == (4, 2)

    def test_parse_region_in_pipeline(self):
        old = repro.generate_classification(800, function=1, seed=5)
        new = repro.generate_classification(800, function=2, seed=6)
        t_old, t_new = repro.DtModel.fit(old), repro.DtModel.fit(new)
        region = repro.parse_region("age < 40 and class = 0")
        value = repro.focussed_deviation(t_old, t_new, old, new, region).value
        assert value >= 0
