"""Every example script runs end to end (at reduced sizes) and returns
the structured report its docstring promises."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
sys.path.insert(0, str(EXAMPLES_DIR))


class TestExamples:
    def test_quickstart(self):
        import quickstart

        report = quickstart.main(n_transactions=800, n_boot=6, seed=7)
        assert report["upper_bound"] >= report["deviation"] - 1e-9
        assert 0 <= report["significance"] <= 100

    def test_retail_store_comparison(self):
        import retail_store_comparison

        report = retail_store_comparison.main(n_transactions=800, seed=42)
        assert set(report) == {"shoes", "clothes", "combined"}
        assert len(report["combined"]) <= 20
        # Department filters keep only that department's items.
        assert all(
            item < 75 for itemset in report["shoes"] for item in itemset
        )
        assert all(
            item >= 75 for itemset in report["clothes"] for item in itemset
        )

    def test_change_monitoring(self):
        import change_monitoring

        report = change_monitoring.main(
            n_train=1_500, n_week=500, n_boot=6, seed=3
        )
        assert len(report) == 3
        quiet_me = max(report[0]["me"], report[1]["me"])
        assert report[2]["me"] > quiet_me  # the drifted week stands out
        assert report[2]["chi2"] > max(report[0]["chi2"], report[1]["chi2"])

    def test_sample_size_selection(self):
        import sample_size_selection

        report = sample_size_selection.main(
            n_transactions=1_200, n_reps=3, seed=11
        )
        assert report["chosen"] in report["fractions"]
        # SD decreases from the smallest to the largest fraction.
        assert report["means"][-1] < report["means"][0]

    def test_cluster_drift(self):
        import cluster_drift

        report = cluster_drift.main(n_per_blob=150, seed=9)
        # The move happened outside downtown.
        assert report["downtown"] < report["deviation"] / 2

    def test_approximate_query(self):
        import approximate_query

        report = approximate_query.main(
            n_transactions=1_200, n_queries=50, seed=13
        )
        assert report["mean_error"] < 0.02
        assert report["exact_hits"] >= 0
        assert report["worst_shift"] > 0

    def test_store_fleet_analysis(self):
        import store_fleet_analysis

        report = store_fleet_analysis.main(n_transactions=900, seed=23)
        assert report["consistent"]
        assert len(report["groups"]) == 3

    def test_store_fleet_analysis_golden_groups(self):
        """Seed-pinned snapshot of the fleet grouping and pruning stats.

        The example is the paper's headline scenario; this pins its
        *output*, not just "it runs": exact group membership for
        (n=900, seed=23) plus how much work delta* pruning saved.
        A change here means the fleet pipeline's numbers moved.
        """
        import store_fleet_analysis

        report = store_fleet_analysis.main(n_transactions=900, seed=23)
        member_sets = sorted(
            tuple(sorted(ms)) for ms in report["groups"].values()
        )
        assert member_sets == [
            ("store-0 (north)", "store-1 (north)", "store-2 (north)"),
            ("store-3 (south)", "store-4 (south)", "store-5 (south)"),
            ("store-6 (coast)", "store-7 (coast)"),
        ]
        assert report["n_pairs"] == 28
        # the 7 within-region pairs are certified from their bounds alone
        assert report["n_pruned"] == 7

    def test_transaction_stream_windows(self):
        import transaction_stream_windows

        report = transaction_stream_windows.main(seed=29)
        assert report["detected"] == report["truth"]
        assert report["truth"] - 1 in report["change_points"]
