"""Durable monitor checkpoints: kill anywhere, resume bit-identically.

Mirrors the storage crash suite: every test either proves a resumed
monitor emits exactly the observations the uninterrupted run would
have, or proves a damaged/torn/mismatched checkpoint refuses to resume
with a typed :class:`CheckpointError`.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.dtree_model import DtModel
from repro.core.lits import LitsModel
from repro.data.quest_basket import build_pattern_pool, generate_basket
from repro.data.quest_classify import generate_classification
from repro.errors import CheckpointError
from repro.mining.tree.builder import TreeParams
from repro.obs import MetricsRegistry, use_registry
from repro.resilience import corrupt_checkpoint, has_checkpoint
from repro.resilience import checkpoint as ckpt
from repro.stream.chunks import iter_chunks, iter_tabular_chunks
from repro.stream.monitor import OnlineChangeMonitor

N_ITEMS = 40


def builder(dataset):
    return LitsModel.mine(dataset, 0.05, max_len=2)


def dt_builder(dataset):
    return DtModel.fit(dataset, TreeParams(max_depth=4, min_leaf=20))


def observed(observations):
    return [
        (o.index, o.deviation, o.significance, o.drifted, o.reference_index)
        for o in observations
    ]


@pytest.fixture(scope="module")
def stream():
    """1600 quiet rows then 800 rows from a shifted process."""
    rng = np.random.default_rng(7)
    pool = build_pattern_pool(
        rng, n_items=N_ITEMS, n_patterns=20, avg_pattern_len=3
    )
    quiet = generate_basket(
        1_600, n_items=N_ITEMS, avg_transaction_len=5, rng=rng, pool=pool
    )
    shifted = generate_basket(
        800, n_items=N_ITEMS, avg_transaction_len=5, n_patterns=20,
        avg_pattern_len=5, rng=rng,
    )
    return list(quiet) + list(shifted)


def make_monitor(**overrides):
    kwargs = dict(
        window_size=400, step=200, n_boot=8, threshold=95.0,
        rng=np.random.default_rng(11),
    )
    kwargs.update(overrides)
    return OnlineChangeMonitor(builder, N_ITEMS, **kwargs)


def interrupted_run(stream, tmp_path, cut, **overrides):
    """Push ``cut`` rows, checkpoint, resume fresh, push the rest."""
    first = make_monitor(**overrides)
    got = list(first.push(stream[:cut]))
    first.checkpoint(tmp_path)
    resumed = make_monitor(**overrides)
    resumed.resume(tmp_path)
    assert resumed.rows_ingested == cut
    got.extend(resumed.push(stream[resumed.rows_ingested:]))
    return got


class TestResumeBitIdentity:
    @pytest.mark.parametrize("cut", [150, 1_100])
    def test_bootstrap_mode_resumes_exactly(self, stream, tmp_path, cut):
        """Mid-warm-up and mid-stream kills, rng state included."""
        expected = make_monitor().push(stream)
        got = interrupted_run(stream, tmp_path, cut)
        assert observed(got) == observed(expected)

    def test_cheap_mode_resumes_exactly(self, stream, tmp_path):
        overrides = dict(n_boot=0, delta_threshold=3.0, rng=None)
        expected = make_monitor(**overrides).push(stream)
        got = interrupted_run(stream, tmp_path, 900, **overrides)
        assert observed(got) == observed(expected)

    def test_tumbling_windows_resume_exactly(self, stream, tmp_path):
        overrides = dict(step=None)
        expected = make_monitor(**overrides).push(stream)
        got = interrupted_run(stream, tmp_path, 1_000, **overrides)
        assert observed(got) == observed(expected)

    def test_reset_on_drift_resumes_exactly(self, stream, tmp_path):
        overrides = dict(policy="reset_on_drift")
        expected = make_monitor(**overrides).push(stream)
        got = interrupted_run(stream, tmp_path, 1_700, **overrides)
        assert observed(got) == observed(expected)

    def test_every_chunk_boundary_checkpoint_still_resumes(
        self, stream, tmp_path
    ):
        """Checkpoint after *every* push (the CLI loop's cadence)."""
        expected = make_monitor().push(stream[:1_200])
        live = make_monitor()
        for chunk in iter_chunks(stream[:800], 160):
            live.push(chunk)
            live.checkpoint(tmp_path)
        resumed = make_monitor()
        resumed.resume(tmp_path)
        got = resumed.push(stream[resumed.rows_ingested : 1_200])
        assert observed(live.history) + observed(got) == observed(expected)

    def test_lifetime_totals_survive_resume(self, stream, tmp_path):
        full = make_monitor()
        full.push(stream)
        interrupted_run(stream, tmp_path, 1_100)
        # interrupted_run used its own resumed monitor; resume again to
        # inspect the lifetime totals on a fresh instance
        resumed = make_monitor()
        resumed.resume(tmp_path)
        resumed.push(stream[resumed.rows_ingested:])
        assert observed(resumed.history) == observed(full.history)
        assert resumed.rows_sketched == full.rows_sketched
        assert resumed.rows_ingested == full.rows_ingested


class TestTabular:
    def test_tabular_monitor_resumes_exactly(self, tmp_path):
        quiet = generate_classification(1_200, function=1, seed=31)
        shifted = generate_classification(600, function=5, seed=32)
        table = quiet.concat(shifted)

        def mk():
            return OnlineChangeMonitor(
                dt_builder, kind="tabular", window_size=400, step=200,
                n_boot=8, threshold=95.0, rng=np.random.default_rng(3),
            )

        expected = []
        base = mk()
        for chunk in iter_tabular_chunks(table, 175):
            expected.extend(base.push(chunk))

        live, fed = mk(), 0
        got = []
        for chunk in iter_tabular_chunks(table, 175):
            got.extend(live.push(chunk))
            fed += len(chunk)
            if fed >= 900:
                break
        live.checkpoint(tmp_path)
        resumed = mk()
        resumed.resume(tmp_path)
        assert resumed.rows_ingested == fed
        rest = table.slice_rows(fed, len(table))
        for chunk in iter_tabular_chunks(rest, 175):
            got.extend(resumed.push(chunk))
        assert observed(got) == observed(expected)


class TestRefusals:
    def test_missing_checkpoint_is_typed(self, stream, tmp_path):
        assert not has_checkpoint(tmp_path)
        with pytest.raises(CheckpointError):
            make_monitor().resume(tmp_path)

    def test_resume_requires_a_fresh_monitor(self, stream, tmp_path):
        used = make_monitor()
        used.push(stream[:600])
        used.checkpoint(tmp_path)
        with pytest.raises(CheckpointError, match="fresh"):
            used.resume(tmp_path)

    def test_fingerprint_mismatch_is_typed_and_names_fields(
        self, stream, tmp_path
    ):
        m = make_monitor()
        m.push(stream[:600])
        m.checkpoint(tmp_path)
        wrong = make_monitor(window_size=600, step=300)
        with pytest.raises(CheckpointError, match="step"):
            wrong.resume(tmp_path)

    @pytest.mark.chaos
    @pytest.mark.parametrize("mode", ["flip", "truncate"])
    def test_corruption_refuses_to_resume(self, stream, tmp_path, mode):
        m = make_monitor()
        m.push(stream[:1_100])
        m.checkpoint(tmp_path)
        corrupt_checkpoint(tmp_path, seed=3, mode=mode)
        with pytest.raises(CheckpointError):
            make_monitor().resume(tmp_path)

    @pytest.mark.chaos
    def test_corrupt_manifest_refuses_to_resume(self, stream, tmp_path):
        m = make_monitor()
        m.push(stream[:600])
        m.checkpoint(tmp_path)
        (tmp_path / "CHECKPOINT.json").write_text("{not json")
        with pytest.raises(CheckpointError):
            make_monitor().resume(tmp_path)


class TestKillMidCheckpoint:
    @pytest.mark.chaos
    def test_torn_generation_rolls_back_to_committed(self, stream, tmp_path):
        """A kill between generation write and manifest swap loses only
        the rows since the previous committed checkpoint."""
        expected = make_monitor().push(stream)

        live = make_monitor()
        live.push(stream[:1_000])
        live.checkpoint(tmp_path)
        committed = json.loads(
            (tmp_path / "CHECKPOINT.json").read_text()
        )["generation"]

        # The crash: push on, write the next generation fully, die
        # before _publish. Damage the torn bytes for good measure.
        live.push(stream[1_000:1_400])
        torn = ckpt._next_generation_name(tmp_path)
        ckpt._write_generation(live, tmp_path, torn)
        torn_state = tmp_path / torn / "state.json"
        torn_state.write_bytes(torn_state.read_bytes()[: 40])

        assert json.loads(
            (tmp_path / "CHECKPOINT.json").read_text()
        )["generation"] == committed

        resumed = make_monitor()
        resumed.resume(tmp_path)
        assert resumed.rows_ingested == 1_000
        got = list(resumed.history) + resumed.push(
            stream[resumed.rows_ingested:]
        )
        assert observed(got) == observed(expected)

    @pytest.mark.chaos
    def test_next_checkpoint_collects_the_torn_generation(
        self, stream, tmp_path
    ):
        live = make_monitor()
        live.push(stream[:800])
        live.checkpoint(tmp_path)
        torn = ckpt._next_generation_name(tmp_path)
        ckpt._write_generation(live, tmp_path, torn)
        assert (tmp_path / torn).exists()

        resumed = make_monitor()
        resumed.resume(tmp_path)
        resumed.push(stream[resumed.rows_ingested : 1_200])
        resumed.checkpoint(tmp_path)
        # the new commit adopted the torn generation's number or swept
        # it; either way exactly one generation remains
        gens = [p for p in tmp_path.iterdir() if p.name.startswith("gen-")]
        assert len(gens) == 1
        assert has_checkpoint(tmp_path)


class TestObsCounters:
    def test_checkpoints_written_and_resumed_are_counted(
        self, stream, tmp_path
    ):
        registry = MetricsRegistry()
        with use_registry(registry):
            m = make_monitor()
            m.push(stream[:600])
            m.checkpoint(tmp_path)
            m.checkpoint(tmp_path)
            fresh = make_monitor()
            fresh.resume(tmp_path)
        assert registry.counter("resilience.checkpoints_written") == 2
        assert registry.counter("resilience.checkpoints_resumed") == 1
