"""SupervisedExecutor: retry, rebuild, degrade, quarantine -- typed and exact.

The fault-free contract (a supervised fan is bit-identical to a plain
one, at zero resilience-counter cost) plus every failure policy, driven
by deterministic :class:`FaultPlan` schedules. Real worker death and
cross-backend chaos live in ``test_chaos.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ExecutorError,
    FocusError,
    InvalidParameterError,
    ShardFailedError,
)
from repro.obs import MetricsRegistry, use_registry
from repro.resilience import (
    Fault,
    FaultPlan,
    SupervisedExecutor,
    backoff_delay,
    partial_support_sketch,
)
from repro.stream.executor import get_executor
from repro.stream.sketch import SupportSketch


def double(x):
    return 2 * x


def no_sleep(delay):
    """Backoff stub: the delays are still computed, just not waited out."""


def supervised(inner="serial", **kwargs):
    kwargs.setdefault("sleep", no_sleep)
    return SupervisedExecutor(inner, **kwargs)


class TestHappyPath:
    def test_map_matches_plain_executor(self):
        runner = supervised("serial")
        try:
            assert runner.map(double, [1, 2, 3]) == [2, 4, 6]
        finally:
            runner.close()

    def test_fault_free_report_is_all_zeros(self):
        runner = supervised("serial")
        try:
            report = runner.map_report(double, range(5))
            assert report.ok
            assert report.results == (0, 2, 4, 6, 8)
            assert report.failed == ()
            assert report.retries == 0
            assert report.pool_rebuilds == 0
            assert not report.degraded
            assert report.backend == "serial"
        finally:
            runner.close()

    def test_fault_free_fan_leaves_counters_at_zero(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            runner = supervised("thread")
            try:
                runner.map(double, range(8))
            finally:
                runner.close()
        for counter in (
            "resilience.retries",
            "resilience.pool_rebuilds",
            "resilience.degraded_fans",
            "resilience.quarantined_shards",
        ):
            assert registry.counter(counter) == 0

    def test_get_executor_resolves_supervised(self):
        runner = get_executor("supervised")
        try:
            assert isinstance(runner, SupervisedExecutor)
            assert runner.backend == "process"
        finally:
            runner.close()


class TestValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(InvalidParameterError):
            SupervisedExecutor("serial", retries=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(InvalidParameterError):
            SupervisedExecutor("serial", shard_timeout=0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(InvalidParameterError):
            SupervisedExecutor("serial", on_failure="shrug")

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            SupervisedExecutor("quantum")

    def test_custom_inner_must_expose_submit(self):
        with pytest.raises(InvalidParameterError):
            SupervisedExecutor(object())


class TestRetry:
    def test_transient_faults_are_retried_to_success(self):
        plan = FaultPlan({(0, 1): Fault("raise"), (2, 1): Fault("raise")})
        runner = supervised("serial", retries=2, fault_plan=plan)
        try:
            report = runner.map_report(double, [1, 2, 3])
        finally:
            runner.close()
        assert report.ok
        assert report.results == (2, 4, 6)
        assert report.retries == 2
        assert {f.shard for f in report.failures} == {0, 2}
        assert all(f.attempt == 1 for f in report.failures)

    def test_identical_runs_report_identically(self):
        plan = FaultPlan.seeded(6, seed=9, rate=0.5, kinds=("raise",))

        def run():
            runner = supervised("serial", retries=3, fault_plan=plan)
            try:
                return runner.map_report(double, range(6))
            finally:
                runner.close()

        assert run() == run()

    def test_retries_are_counted_in_obs(self):
        plan = FaultPlan({(1, 1): Fault("raise")})
        registry = MetricsRegistry()
        with use_registry(registry):
            runner = supervised("serial", retries=1, fault_plan=plan)
            try:
                runner.map(double, [5, 6])
            finally:
                runner.close()
        assert registry.counter("resilience.retries") == 1


class TestQuarantine:
    def exhausted_plan(self, shard, budget):
        return FaultPlan(
            {(shard, a): Fault("raise") for a in range(1, budget + 1)}
        )

    def test_map_raises_typed_error_naming_the_shard(self):
        runner = supervised(
            "serial", retries=1, fault_plan=self.exhausted_plan(1, 2)
        )
        try:
            with pytest.raises(ShardFailedError) as excinfo:
                runner.map(double, [1, 2, 3])
        finally:
            runner.close()
        assert excinfo.value.shards == (1,)
        assert "1" in str(excinfo.value)
        assert isinstance(excinfo.value, FocusError)

    def test_map_report_keeps_survivors_and_accounts_failures(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            runner = supervised(
                "serial", retries=1, fault_plan=self.exhausted_plan(0, 2)
            )
            try:
                report = runner.map_report(double, [1, 2, 3])
            finally:
                runner.close()
        assert not report.ok
        assert report.failed == (0,)
        assert report.results == (None, 4, 6)
        assert len(report.errors) == 1 and "InjectedFault" in report.errors[0]
        assert registry.counter("resilience.quarantined_shards") == 1


class TestDegrade:
    def test_thread_scoped_faults_degrade_to_serial(self):
        plan = FaultPlan(
            {
                (s, a): Fault("raise", backend="thread")
                for s in range(3)
                for a in (1, 2)
            }
        )
        registry = MetricsRegistry()
        with use_registry(registry):
            runner = supervised(
                "thread", retries=1, on_failure="degrade", fault_plan=plan
            )
            try:
                report = runner.map_report(double, [1, 2, 3])
            finally:
                runner.close()
        assert report.ok
        assert report.results == (2, 4, 6)
        assert report.degraded
        assert report.backend == "serial"
        assert registry.counter("resilience.degraded_fans") == 1

    def test_exhausting_every_rung_still_fails_typed(self):
        plan = FaultPlan(
            {(0, a): Fault("raise") for a in (1, 2)}  # fires on every rung
        )
        runner = supervised(
            "thread", retries=1, on_failure="degrade", fault_plan=plan
        )
        try:
            with pytest.raises(ShardFailedError) as excinfo:
                runner.map(double, [1])
        finally:
            runner.close()
        assert excinfo.value.shards == (0,)


class TestTimeout:
    def test_stalled_shard_is_abandoned_and_retried(self):
        plan = FaultPlan({(0, 1): Fault("stall", seconds=1.0)})
        runner = supervised(
            "thread", retries=1, shard_timeout=0.2, fault_plan=plan
        )
        try:
            report = runner.map_report(double, [7, 8])
        finally:
            runner.close()
        assert report.ok
        assert report.results == (14, 16)
        assert any("stalled" in f.error for f in report.failures)


class TestLifecycle:
    def test_map_after_close_raises_typed(self):
        runner = supervised("serial")
        runner.close()
        with pytest.raises(ExecutorError):
            runner.map(double, [1])

    def test_shutdown_is_not_permanent(self):
        runner = supervised("serial")
        try:
            assert runner.map(double, [1]) == [2]
            runner.shutdown()
            assert runner.map(double, [2]) == [4]
        finally:
            runner.close()


class TestBackoffDeterminism:
    def test_same_cell_same_delay(self):
        assert backoff_delay(3, 2, jitter_seed=17) == backoff_delay(
            3, 2, jitter_seed=17
        )

    def test_cells_get_distinct_jitter(self):
        delays = {
            backoff_delay(s, a, jitter_seed=17)
            for s in range(4)
            for a in (1, 2)
        }
        assert len(delays) == 8

    def test_delay_is_bounded_by_the_jittered_cap(self):
        for attempt in range(1, 12):
            delay = backoff_delay(
                0, attempt, base=0.05, cap=2.0, jitter_seed=0
            )
            ceiling = min(2.0, 0.05 * 2 ** (attempt - 1))
            assert 0.5 * ceiling <= delay <= ceiling


TXNS = [
    (0, 1), (1, 2), (0, 2, 3), (3,), (0, 1, 2, 3), (2,), (1,), (0, 3),
] * 4
ITEMSETS = [(0,), (1, 2), (0, 3)]
N_ITEMS = 4


class TestPartialSketch:
    def shards(self):
        third = len(TXNS) // 3
        return [TXNS[:third], TXNS[third : 2 * third], TXNS[2 * third :]]

    def test_complete_fan_equals_direct_sketch(self):
        runner = supervised("serial")
        try:
            report = partial_support_sketch(
                self.shards(), ITEMSETS, N_ITEMS, executor=runner
            )
        finally:
            runner.close()
        assert report.complete
        assert report.excluded_rows == 0
        direct = SupportSketch.from_transactions(TXNS, ITEMSETS, N_ITEMS)
        np.testing.assert_array_equal(report.sketch.counts, direct.counts)

    def test_dead_shard_is_excluded_with_exact_row_accounting(self):
        shards = self.shards()
        plan = FaultPlan({(1, a): Fault("raise") for a in (1, 2)})
        runner = supervised("serial", retries=1, fault_plan=plan)
        try:
            report = partial_support_sketch(
                shards, ITEMSETS, N_ITEMS, executor=runner
            )
        finally:
            runner.close()
        assert not report.complete
        assert report.excluded_shards == (1,)
        assert report.included_shards == (0, 2)
        assert report.excluded_rows == len(shards[1])
        assert report.total_rows == len(TXNS)
        assert "partial" in report.describe()
        survivors = shards[0] + shards[2]
        direct = SupportSketch.from_transactions(survivors, ITEMSETS, N_ITEMS)
        np.testing.assert_array_equal(report.sketch.counts, direct.counts)
