"""The chaos suite: every completed fan is bit-identical, or typed and loud.

Marked ``chaos``: CI runs these separately (``-m chaos``) with the
process backend, because they exercise *real* worker death
(``os._exit`` inside a pool worker breaking the ``ProcessPoolExecutor``)
on top of the injected exceptions and stalls the in-process backends
see. Everything is seeded -- a failing chaos run replays exactly.
"""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError, ShardFailedError
from repro.obs import MetricsRegistry, use_registry
from repro.resilience import Fault, FaultPlan, InjectedFault, SupervisedExecutor

pytestmark = pytest.mark.chaos


def square(x):
    return x * x


def no_sleep(delay):
    """Chaos runs should replay fast; delays are computed, not waited."""


class TestFaultPrimitives:
    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            Fault("meltdown")

    def test_raise_fault_raises_injected(self):
        with pytest.raises(InjectedFault):
            Fault("raise").fire(0, 1)

    def test_die_degrades_to_raise_in_process(self):
        # No parent process here, so a "die" cannot take a worker down;
        # it must surface as the injected exception instead of exiting
        # the test interpreter.
        with pytest.raises(InjectedFault):
            Fault("die").fire(0, 1)

    def test_seeded_plans_replay(self):
        a = FaultPlan.seeded(8, seed=3, rate=0.5, max_attempts=2)
        b = FaultPlan.seeded(8, seed=3, rate=0.5, max_attempts=2)
        assert a.faults == b.faults
        assert len(FaultPlan.seeded(8, seed=3, rate=0.0)) == 0

    def test_backend_scoped_faults_only_fire_there(self):
        plan = FaultPlan({(0, 1): Fault("raise", backend="process")})
        assert plan.fault_for(0, 1, backend="process") is not None
        assert plan.fault_for(0, 1, backend="serial") is None


class TestBitIdentity:
    """A fan that completes under faults equals the fault-free run."""

    ITEMS = list(range(10))

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_completed_fans_match_fault_free(self, backend):
        expected = [square(x) for x in self.ITEMS]
        plan = FaultPlan.seeded(
            len(self.ITEMS), seed=29, rate=0.4,
            kinds=("die", "raise"), max_attempts=2,
        )
        assert len(plan) > 0, "seed must inject something"
        runner = SupervisedExecutor(
            backend, retries=3, fault_plan=plan, sleep=no_sleep
        )
        try:
            report = runner.map_report(square, self.ITEMS)
        finally:
            runner.close()
        assert report.ok
        assert list(report.results) == expected
        assert report.retries >= 1

    def test_real_worker_death_rebuilds_the_pool(self):
        plan = FaultPlan({(1, 1): Fault("die")})
        registry = MetricsRegistry()
        with use_registry(registry):
            runner = SupervisedExecutor(
                "process", retries=2, fault_plan=plan, sleep=no_sleep,
                max_workers=2,
            )
            try:
                report = runner.map_report(square, self.ITEMS)
            finally:
                runner.close()
        assert report.ok
        assert list(report.results) == [square(x) for x in self.ITEMS]
        assert report.pool_rebuilds >= 1
        assert registry.counter("resilience.pool_rebuilds") >= 1

    def test_stall_is_timed_out_and_recovered(self):
        plan = FaultPlan({(0, 1): Fault("stall", seconds=1.0)})
        runner = SupervisedExecutor(
            "thread", retries=1, shard_timeout=0.2, fault_plan=plan,
            sleep=no_sleep,
        )
        try:
            report = runner.map_report(square, [3, 4])
        finally:
            runner.close()
        assert report.ok
        assert list(report.results) == [9, 16]
        assert any("stalled" in f.error for f in report.failures)


class TestTypedFailure:
    """A fan that cannot complete must fail loudly, naming the shard."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_persistent_death_raises_shard_failed(self, backend):
        budget = 2
        plan = FaultPlan(
            {(2, a): Fault("die") for a in range(1, budget + 1)}
        )
        runner = SupervisedExecutor(
            backend, retries=budget - 1, fault_plan=plan, sleep=no_sleep,
            max_workers=2,
        )
        try:
            with pytest.raises(ShardFailedError) as excinfo:
                runner.map(square, list(range(5)))
        finally:
            runner.close()
        assert 2 in excinfo.value.shards

    def test_degraded_fan_survives_a_broken_rung(self):
        # Only the process rung is poisoned: a degradable fan must land
        # the work below and come back bit-identical.
        plan = FaultPlan(
            {
                (s, a): Fault("die", backend="process")
                for s in range(4)
                for a in (1, 2)
            }
        )
        runner = SupervisedExecutor(
            "process", retries=1, on_failure="degrade", fault_plan=plan,
            sleep=no_sleep, max_workers=2,
        )
        try:
            report = runner.map_report(square, list(range(4)))
        finally:
            runner.close()
        assert report.ok
        assert list(report.results) == [0, 1, 4, 9]
        assert report.degraded
        assert report.backend in ("thread", "serial")


class TestChaosDeterminism:
    def test_chaotic_runs_replay_bit_identically(self):
        plan = FaultPlan.seeded(
            6, seed=101, rate=0.6, kinds=("raise",), max_attempts=3
        )

        def run():
            runner = SupervisedExecutor(
                "serial", retries=3, fault_plan=plan, sleep=no_sleep
            )
            try:
                return runner.map_report(square, list(range(6)))
            finally:
                runner.close()

        first, second = run(), run()
        assert first == second
        assert first.failures == second.failures
