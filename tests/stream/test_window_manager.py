"""WindowManager: sliding/tumbling maintenance equals direct scans."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.quest_basket import generate_basket
from repro.errors import InvalidParameterError
from repro.stream.chunks import iter_chunks
from repro.stream.sketch import SupportSketch
from repro.stream.windows import WindowManager

N_ITEMS = 30
CHUNK = 50
ITEMSETS = [(), (1,), (2, 3), (0, 4), (5,), (1, 2, 3)]


@pytest.fixture(scope="module")
def stream():
    dataset = generate_basket(
        1_000, n_items=N_ITEMS, avg_transaction_len=5, n_patterns=25,
        avg_pattern_len=3, seed=77,
    )
    return list(dataset)


def reference_sketch(stream, start, stop):
    return SupportSketch.from_transactions(
        stream[start:stop], ITEMSETS, N_ITEMS
    )


class TestSlidingWindows:
    def test_every_window_matches_direct_scan(self, stream):
        manager = WindowManager(ITEMSETS, N_ITEMS, window_chunks=4)
        windows = list(manager.push_many(iter_chunks(stream, CHUNK)))
        assert len(windows) == len(stream) // CHUNK - 3
        for window in windows:
            assert window.stop - window.start == 4 * CHUNK
            assert window.sketch == reference_sketch(
                stream, window.start, window.stop
            )

    def test_windows_advance_by_one_chunk(self, stream):
        manager = WindowManager(ITEMSETS, N_ITEMS, window_chunks=3)
        windows = list(manager.push_many(iter_chunks(stream, CHUNK)))
        starts = [w.start for w in windows]
        assert starts == list(range(0, len(starts) * CHUNK, CHUNK))
        assert [w.index for w in windows] == list(range(len(windows)))

    def test_no_rescan_of_surviving_rows(self, stream):
        manager = WindowManager(ITEMSETS, N_ITEMS, window_chunks=4)
        for _ in manager.push_many(iter_chunks(stream, CHUNK)):
            pass
        # every pushed row was sketched exactly once
        assert manager.rows_sketched == len(stream)

    def test_window_transactions_and_dataset(self, stream):
        manager = WindowManager(ITEMSETS, N_ITEMS, window_chunks=2)
        windows = list(manager.push_many(iter_chunks(stream, CHUNK)))
        w = windows[5]
        expected = [
            tuple(sorted(set(t))) for t in stream[w.start : w.stop]
        ]
        assert list(w.transactions) == expected
        dataset = w.to_dataset()
        assert len(dataset) == len(w) == 2 * CHUNK
        assert dataset.n_items == N_ITEMS

    def test_sharded_executor_same_windows(self, stream):
        serial = WindowManager(ITEMSETS, N_ITEMS, window_chunks=3)
        sharded = WindowManager(
            ITEMSETS, N_ITEMS, window_chunks=3, executor="thread", n_shards=3
        )
        for chunk in iter_chunks(stream[:400], CHUNK):
            a, b = serial.push(chunk), sharded.push(chunk)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.sketch == b.sketch


class TestTumblingWindows:
    def test_windows_are_disjoint_and_exact(self, stream):
        manager = WindowManager(
            ITEMSETS, N_ITEMS, window_chunks=4, policy="tumbling"
        )
        windows = list(manager.push_many(iter_chunks(stream, CHUNK)))
        assert len(windows) == len(stream) // (4 * CHUNK)
        previous_stop = 0
        for window in windows:
            assert window.start == previous_stop
            previous_stop = window.stop
            assert window.sketch == reference_sketch(
                stream, window.start, window.stop
            )

    def test_flush_emits_partial_window(self, stream):
        manager = WindowManager(
            ITEMSETS, N_ITEMS, window_chunks=4, policy="tumbling"
        )
        list(manager.push_many(iter_chunks(stream[:300], CHUNK)))
        partial = manager.flush()
        assert partial is not None
        assert (partial.start, partial.stop) == (200, 300)
        assert partial.sketch == reference_sketch(stream, 200, 300)
        assert manager.flush() is None  # buffer drained

    def test_flush_noop_for_sliding(self, stream):
        manager = WindowManager(ITEMSETS, N_ITEMS, window_chunks=2)
        list(manager.push_many(iter_chunks(stream[:300], CHUNK)))
        assert manager.flush() is None


class TestValidation:
    def test_bad_window_chunks(self):
        with pytest.raises(InvalidParameterError):
            WindowManager(ITEMSETS, N_ITEMS, window_chunks=0)

    def test_bad_policy(self):
        with pytest.raises(InvalidParameterError):
            WindowManager(ITEMSETS, N_ITEMS, window_chunks=2, policy="hopping")

    def test_current_sketch_tracks_buffer(self, stream):
        manager = WindowManager(ITEMSETS, N_ITEMS, window_chunks=4)
        chunks = list(iter_chunks(stream[:150], CHUNK))
        for chunk in chunks:
            manager.push(chunk)
        assert manager.current_sketch == reference_sketch(stream, 0, 150)
        assert len(manager.buffered_chunks) == 3
