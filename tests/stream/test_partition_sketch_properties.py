"""Hypothesis properties: partition shard-merge correctness.

The partition-sketch siblings of the ``SupportSketch`` invariants in
``test_sketch_properties.py``:

* **merge**: for ANY partition of a tabular row bag into shards
  (including empty shards), the sum of per-shard
  :class:`PartitionSketch` histograms equals the single-scan
  ``PartitionStructure.counts`` over the whole bag -- for the labelled
  (dt-model) case and the unlabelled (cluster-model) case alike;
* **retirement**: ``whole - prefix == suffix``, the sliding-window
  subtraction step.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attribute import AttributeSpace, categorical, numeric
from repro.core.model import PartitionStructure
from repro.core.predicate import interval_constraint
from repro.core.region import BoxRegion
from repro.data.tabular import TabularDataset
from repro.mining.cluster.grid import Grid
from repro.stream.executor import sharded_partition_sketch
from repro.stream.sketch import PartitionSketch

LABELS = (3, 1, 7)
LABELLED_SPACE = AttributeSpace(
    (numeric("age", 0.0, 1.0), categorical("colour", (4, 2, 9))),
    class_labels=LABELS,
)
UNLABELLED_SPACE = AttributeSpace(
    (numeric("age", 0.0, 1.0), categorical("colour", (4, 2, 9)))
)
_GRID_L = Grid.uniform(LABELLED_SPACE, bins=3)
_GRID_U = Grid.uniform(UNLABELLED_SPACE, bins=3)


def _structure(grid, class_labels) -> PartitionStructure:
    n_cells = int(np.prod(grid.shape()))
    cells = tuple(grid.cell_predicate(i) for i in range(n_cells))
    return PartitionStructure(
        cells=cells, class_labels=class_labels, assigner=grid.assign
    )


LABELLED = _structure(_GRID_L, LABELS)
UNLABELLED = _structure(_GRID_U, ())


rows_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.999),
        st.sampled_from([4, 2, 9]),
        st.sampled_from(LABELS),
    ),
    max_size=60,
)


def _dataset(rows, labelled: bool) -> TabularDataset:
    space = LABELLED_SPACE if labelled else UNLABELLED_SPACE
    X = np.array([[age, colour] for age, colour, _ in rows]).reshape(-1, 2)
    y = (
        np.array([label for _, _, label in rows], dtype=np.int64)
        if labelled
        else None
    )
    return TabularDataset(space, X, y)


@st.composite
def partitioned_rows(draw):
    """A row bag plus an arbitrary partition into shards."""
    rows = draw(rows_strategy)
    n_shards = draw(st.integers(min_value=1, max_value=6))
    assignment = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_shards - 1),
            min_size=len(rows),
            max_size=len(rows),
        )
    )
    shards: list[list] = [[] for _ in range(n_shards)]
    for row, shard in zip(rows, assignment):
        shards[shard].append(row)
    return rows, shards


class TestPartitionShardMergeProperty:
    @given(data=partitioned_rows(), labelled=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_sum_of_shard_sketches_equals_single_scan(self, data, labelled):
        rows, shards = data
        structure = LABELLED if labelled else UNLABELLED
        whole = _dataset(rows, labelled)
        merged = sum(
            (
                PartitionSketch.from_dataset(_dataset(s, labelled), structure)
                for s in shards
            ),
            PartitionSketch.empty(structure),
        )
        assert merged.n_rows == len(rows)
        np.testing.assert_array_equal(merged.counts, structure.counts(whole))
        # The single-scan sketch is the same object-level value.
        assert merged == PartitionSketch.from_dataset(whole, structure)
        # Region counts conserve mass: every row lands in exactly one
        # cell (x its class for the labelled structure).
        assert merged.counts.sum() == len(rows)

    @given(data=partitioned_rows(), labelled=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_sharded_helper_equals_single_scan(self, data, labelled):
        rows, _ = data
        structure = LABELLED if labelled else UNLABELLED
        whole = _dataset(rows, labelled)
        for n_shards in (1, 3, len(rows) + 1):
            merged = sharded_partition_sketch(
                whole, structure.plan, n_shards=n_shards
            )
            assert merged == PartitionSketch.from_dataset(whole, structure)

    @given(data=partitioned_rows(), labelled=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_prefix_subtraction_equals_suffix_scan(self, data, labelled):
        """whole - prefix == suffix: the sliding-window retirement step."""
        rows, _ = data
        structure = LABELLED if labelled else UNLABELLED
        cut = len(rows) // 2
        whole = PartitionSketch.from_dataset(_dataset(rows, labelled), structure)
        prefix = PartitionSketch.from_dataset(
            _dataset(rows[:cut], labelled), structure
        )
        suffix = PartitionSketch.from_dataset(
            _dataset(rows[cut:], labelled), structure
        )
        assert whole - prefix == suffix


class TestSketchAgainstFocussedStructure:
    @given(data=rows_strategy)
    @settings(max_examples=25, deadline=None)
    def test_focussed_structure_sketches_consistently(self, data):
        """Sketches over a focussed overlay still merge and align."""
        focussed = LABELLED.focussed(
            BoxRegion(interval_constraint("age", hi=0.5))
        )
        whole = _dataset(data, True)
        sketch = PartitionSketch.from_dataset(whole, focussed)
        np.testing.assert_array_equal(sketch.counts, focussed.counts(whole))
