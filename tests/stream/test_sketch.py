"""Unit tests for the mergeable SupportSketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IncompatibleModelsError, InvalidParameterError
from repro.stream.sketch import SupportSketch, canonical_itemsets

TXNS_A = [(0, 1), (0, 1, 2), (2,), (0,)]
TXNS_B = [(1, 2), (0, 1), (), (3,), (0, 1, 2)]
ITEMSETS = [(), (0,), (1,), (0, 1), (1, 2), (0, 1, 2)]


class TestCanonicalItemsets:
    def test_orders_by_size_then_lex(self):
        canon = canonical_itemsets([(2, 1), (0,), (), (1, 2)])
        assert canon == (
            frozenset(),
            frozenset({0}),
            frozenset({1, 2}),
        )

    def test_deduplicates(self):
        assert len(canonical_itemsets([(1, 2), (2, 1)])) == 1


class TestSupportSketch:
    def test_from_transactions_counts(self):
        sketch = SupportSketch.from_transactions(TXNS_A, ITEMSETS, 4)
        counts = sketch.as_dict()
        assert counts[frozenset()] == 4
        assert counts[frozenset({0})] == 3
        assert counts[frozenset({0, 1})] == 2
        assert counts[frozenset({0, 1, 2})] == 1

    def test_from_dataset_matches_from_transactions(self, small_transactions):
        a = SupportSketch.from_dataset(small_transactions, ITEMSETS)
        b = SupportSketch.from_transactions(
            list(small_transactions), ITEMSETS, small_transactions.n_items
        )
        assert a == b

    def test_add_equals_concatenated_scan(self):
        a = SupportSketch.from_transactions(TXNS_A, ITEMSETS, 4)
        b = SupportSketch.from_transactions(TXNS_B, ITEMSETS, 4)
        merged = a + b
        whole = SupportSketch.from_transactions(TXNS_A + TXNS_B, ITEMSETS, 4)
        assert merged == whole
        assert merged.n_transactions == len(TXNS_A) + len(TXNS_B)

    def test_sum_builtin_merges(self):
        shards = [TXNS_A, [], TXNS_B]
        sketches = [
            SupportSketch.from_transactions(s, ITEMSETS, 4) for s in shards
        ]
        assert sum(sketches) == SupportSketch.from_transactions(
            TXNS_A + TXNS_B, ITEMSETS, 4
        )

    def test_subtract_retires_a_chunk(self):
        whole = SupportSketch.from_transactions(TXNS_A + TXNS_B, ITEMSETS, 4)
        head = SupportSketch.from_transactions(TXNS_A, ITEMSETS, 4)
        assert whole - head == SupportSketch.from_transactions(
            TXNS_B, ITEMSETS, 4
        )

    def test_subtract_underflow_rejected(self):
        a = SupportSketch.from_transactions(TXNS_A, ITEMSETS, 4)
        whole = SupportSketch.from_transactions(TXNS_A + TXNS_B, ITEMSETS, 4)
        with pytest.raises(InvalidParameterError):
            a - whole

    def test_incompatible_itemsets_rejected(self):
        a = SupportSketch.from_transactions(TXNS_A, [(0,)], 4)
        b = SupportSketch.from_transactions(TXNS_B, [(1,)], 4)
        with pytest.raises(IncompatibleModelsError):
            a + b

    def test_incompatible_universe_rejected(self):
        a = SupportSketch.from_transactions(TXNS_A, [(0,)], 4)
        b = SupportSketch.from_transactions(TXNS_A, [(0,)], 5)
        with pytest.raises(IncompatibleModelsError):
            a + b

    def test_empty_is_additive_identity(self):
        a = SupportSketch.from_transactions(TXNS_A, ITEMSETS, 4)
        empty = SupportSketch.empty(ITEMSETS, 4)
        assert a + empty == a
        assert empty.n_transactions == 0
        assert not empty.counts.any()

    def test_supports_and_count_of(self):
        sketch = SupportSketch.from_transactions(TXNS_A, ITEMSETS, 4)
        assert sketch.count_of((0, 1)) == 2
        np.testing.assert_allclose(
            sketch.supports(),
            sketch.counts / len(TXNS_A),
        )
        with pytest.raises(InvalidParameterError):
            sketch.count_of((3,))

    def test_empty_sketch_supports_are_zero(self):
        empty = SupportSketch.empty(ITEMSETS, 4)
        assert not empty.supports().any()

    def test_misaligned_counts_rejected(self):
        with pytest.raises(InvalidParameterError):
            SupportSketch(ITEMSETS, np.zeros(2, dtype=np.int64), 0, 4)

    def test_alignment_matches_lits_structure(self):
        from repro.core.model import LitsStructure

        structure = LitsStructure([frozenset(s) for s in ITEMSETS if s])
        sketch = SupportSketch.from_transactions(
            TXNS_A, [s for s in ITEMSETS if s], 4
        )
        assert sketch.itemsets == structure.itemsets
