"""Executor backends: identical merged sketches on every backend."""

from __future__ import annotations

import pytest

from repro.errors import ExecutorError, InvalidParameterError
from repro.stream.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    shard_transactions,
    sharded_support_sketch,
)
from repro.stream.sketch import SupportSketch

TXNS = [
    (0, 1), (1, 2), (0, 2, 3), (3,), (0, 1, 2, 3), (2,), (1,), (0, 3),
] * 5
ITEMSETS = [(), (0,), (1, 2), (0, 3), (0, 1, 2)]


class TestShardTransactions:
    def test_even_split_covers_everything(self):
        shards = shard_transactions(TXNS, 3)
        assert sum(len(s) for s in shards) == len(TXNS)
        assert [t for s in shards for t in s] == list(TXNS)
        assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1

    def test_more_shards_than_rows_gives_empty_shards(self):
        shards = shard_transactions(TXNS[:2], 5)
        assert len(shards) == 5
        assert sum(len(s) for s in shards) == 2

    def test_invalid_shard_count(self):
        with pytest.raises(InvalidParameterError):
            shard_transactions(TXNS, 0)


class TestGetExecutor:
    def test_names_resolve(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread"), ThreadExecutor)
        assert isinstance(get_executor("process"), ProcessExecutor)

    def test_instance_passthrough(self):
        ex = ThreadExecutor(max_workers=2)
        assert get_executor(ex) is ex

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            get_executor("gpu")
        with pytest.raises(InvalidParameterError):
            get_executor(42)


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def single_scan(self):
        return SupportSketch.from_transactions(TXNS, ITEMSETS, 4)

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_backend_matches_single_scan(self, backend, single_scan):
        merged = sharded_support_sketch(
            TXNS, ITEMSETS, 4, n_shards=4, executor=backend
        )
        assert merged == single_scan

    @pytest.mark.slow
    def test_process_backend_matches_single_scan(self, single_scan):
        merged = sharded_support_sketch(
            TXNS, ITEMSETS, 4, n_shards=2,
            executor=ProcessExecutor(max_workers=2),
        )
        assert merged == single_scan


def _boom(x):
    raise ValueError(f"worker bug on {x}")


class TestTypedLifecycleErrors:
    """Raw concurrent.futures states never leak: closed executors and
    broken pools surface as typed repro errors (PR 10)."""

    def test_serial_map_after_close_raises_typed(self):
        ex = SerialExecutor()
        ex.close()
        with pytest.raises(ExecutorError, match="closed"):
            ex.map(len, [(1, 2)])

    def test_serial_submit_after_close_raises_typed(self):
        ex = SerialExecutor()
        ex.close()
        with pytest.raises(ExecutorError, match="closed"):
            ex.submit(len, (1, 2))

    def test_thread_map_after_close_raises_typed(self):
        ex = ThreadExecutor(max_workers=1)
        ex.close()
        with pytest.raises(ExecutorError, match="closed"):
            ex.map(len, [(1, 2)])

    def test_shutdown_is_reusable_not_permanent(self):
        ex = ThreadExecutor(max_workers=1)
        try:
            assert ex.map(len, [(1, 2)]) == [2]
            ex.shutdown()
            assert ex.map(len, [(1, 2, 3)]) == [3]
        finally:
            ex.close()

    def test_serial_submit_settles_eagerly(self):
        ex = SerialExecutor()
        future = ex.submit(len, (1, 2, 3))
        assert future.done()
        assert future.result() == 3
        failed = ex.submit(_boom, 1)
        assert failed.done()
        with pytest.raises(ValueError, match="worker bug"):
            failed.result()

    def test_supervised_name_resolves(self):
        from repro.resilience import SupervisedExecutor

        runner = get_executor("supervised")
        try:
            assert isinstance(runner, SupervisedExecutor)
        finally:
            runner.close()
