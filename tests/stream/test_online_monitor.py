"""OnlineChangeMonitor: streaming drift detection over raw transactions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deviation import deviation_over_structure
from repro.core.lits import LitsModel
from repro.data.quest_basket import build_pattern_pool, generate_basket
from repro.data.transactions import TransactionDataset
from repro.errors import InvalidParameterError
from repro.stream.chunks import iter_chunks
from repro.stream.monitor import OnlineChangeMonitor

N_ITEMS = 50


def builder(dataset):
    return LitsModel.mine(dataset, 0.05, max_len=2)


@pytest.fixture(scope="module")
def drifting_stream():
    """3000 quiet rows, then 1500 rows from a shifted process."""
    rng = np.random.default_rng(5)
    pool = build_pattern_pool(
        rng, n_items=N_ITEMS, n_patterns=30, avg_pattern_len=3
    )
    quiet = generate_basket(
        3_000, n_items=N_ITEMS, avg_transaction_len=5, rng=rng, pool=pool
    )
    shifted = generate_basket(
        1_500, n_items=N_ITEMS, avg_transaction_len=5, n_patterns=30,
        avg_pattern_len=5, rng=rng,
    )
    return list(quiet) + list(shifted), 3_000


class TestCheapMode:
    """n_boot=0: drift by deviation threshold, fully incremental."""

    def test_detects_the_process_change(self, drifting_stream):
        stream, change_row = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=250,
            n_boot=0, delta_threshold=3.0,
        )
        observations = monitor.push(stream)
        assert len(observations) == (len(stream) - 1_000) // 250 - 3
        drifted = [o for o in observations if o.drifted]
        assert drifted, "the shifted process must be flagged"
        # No window fully before the change may drift; every window fully
        # after it must.
        quiet_windows = [o for o in observations if not o.drifted]
        assert all(o.deviation < 3.0 for o in quiet_windows)
        assert observations[-1].drifted

    def test_push_in_dribbles_equals_one_push(self, drifting_stream):
        stream, _ = drifting_stream
        kwargs = dict(
            window_size=1_000, step=500, n_boot=0, delta_threshold=3.0
        )
        all_at_once = OnlineChangeMonitor(builder, N_ITEMS, **kwargs)
        dribbled = OnlineChangeMonitor(builder, N_ITEMS, **kwargs)
        expected = all_at_once.push(stream)
        got = []
        for chunk in iter_chunks(stream, 333):
            got.extend(dribbled.push(chunk))
        assert [(o.index, o.deviation, o.drifted) for o in got] == [
            (o.index, o.deviation, o.drifted) for o in expected
        ]

    def test_deviation_matches_offline_delta1(self, drifting_stream):
        """The sketch-maintained delta equals deviation_over_structure on
        materialised datasets (reference structure, same f and g)."""
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=500,
            n_boot=0, delta_threshold=3.0,
        )
        observations = monitor.push(stream[:3_000])
        reference = TransactionDataset(stream[:1_000], N_ITEMS)
        structure = builder(reference).structure
        for i, obs in enumerate(observations):
            start = 1_000 + i * 500
            window = TransactionDataset(
                stream[start : start + 1_000], N_ITEMS
            )
            offline = deviation_over_structure(structure, reference, window)
            assert obs.deviation == pytest.approx(offline.value, abs=1e-6)

    def test_no_observation_before_first_window(self, drifting_stream):
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=500,
            n_boot=0, delta_threshold=3.0,
        )
        assert monitor.push(stream[:999]) == []
        assert monitor.is_warming_up
        assert monitor.push(stream[999:1_999]) == []  # window forming
        assert not monitor.is_warming_up
        assert len(monitor.push(stream[1_999:2_000])) == 1

    def test_rows_sketched_counts_each_row_once(self, drifting_stream):
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=250,
            n_boot=0, delta_threshold=3.0,
        )
        monitor.push(stream)
        monitored_rows = len(stream) - 1_000  # reference is not sketched
        assert monitor.rows_sketched == monitored_rows - monitored_rows % 250


class TestBootstrapMode:
    def test_quiet_then_drift_with_significance(self, drifting_stream):
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=1_000,
            n_boot=12, rng=np.random.default_rng(8),
        )
        observations = monitor.push(stream[:4_000])
        assert len(observations) == 3
        assert not observations[0].drifted  # quiet window
        assert observations[-1].drifted  # fully shifted window
        assert observations[-1].significance >= 95.0
        assert monitor.drift_points() == [
            o.index for o in observations if o.drifted
        ]


class TestResetOnDrift:
    def test_reference_moves_and_windows_retrack(self, drifting_stream):
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=500,
            n_boot=0, delta_threshold=3.0, policy="reset_on_drift",
        )
        observations = monitor.push(stream)
        first_drift = next(o for o in observations if o.drifted)
        after = [o for o in observations if o.index > first_drift.index]
        assert after, "stream continues past the reset"
        # the observation right after a drift compares to the promoted window
        assert after[0].reference_index == first_drift.index
        # the reference is only ever the initial one or a drifted snapshot
        drifted_indices = {o.index for o in observations if o.drifted} | {0}
        assert all(o.reference_index in drifted_indices for o in observations)
        # the tail (same shifted process as its reference) is quiet again
        assert not after[-1].drifted
        # the lifetime scan count survives the window-manager rebuilds:
        # every monitored row once, plus one window re-sketch per reset
        monitored = len(stream) - 1_000
        n_resets = sum(o.drifted for o in observations)
        assert monitor.rows_sketched == monitored + n_resets * 1_000


class TestValidation:
    def test_step_must_divide_window(self):
        with pytest.raises(InvalidParameterError):
            OnlineChangeMonitor(
                builder, N_ITEMS, window_size=1_000, step=300,
                n_boot=0, delta_threshold=1.0,
            )

    def test_cheap_mode_needs_delta_threshold(self):
        with pytest.raises(InvalidParameterError):
            OnlineChangeMonitor(builder, N_ITEMS, window_size=100, n_boot=0)

    def test_bad_universe_and_window(self):
        with pytest.raises(InvalidParameterError):
            OnlineChangeMonitor(builder, 0, window_size=100)
        with pytest.raises(InvalidParameterError):
            OnlineChangeMonitor(builder, N_ITEMS, window_size=0)

    def test_non_lits_builder_rejected_at_start(self, drifting_stream):
        stream, _ = drifting_stream

        class NotALitsModel:
            pass

        monitor = OnlineChangeMonitor(
            lambda d: NotALitsModel(), N_ITEMS, window_size=500, step=500,
            n_boot=0, delta_threshold=1.0,
        )
        with pytest.raises(InvalidParameterError):
            monitor.push(stream[:1_000])

    def test_monitor_stream_generator(self, drifting_stream):
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=500, step=500,
            n_boot=0, delta_threshold=3.0,
        )
        observations = list(
            monitor.monitor_stream(iter_chunks(stream[:2_000], 250))
        )
        assert len(observations) == 3
        assert [o.index for o in observations] == [1, 2, 3]


class TestCountSpaceQualification:
    """Fixed-structure bootstrap without materialising window rows."""

    def test_bootstrap_never_materialises_windows(
        self, drifting_stream, monkeypatch
    ):
        """Under the fixed policy the count-space engine qualifies every
        window; Window.to_dataset (the materialisation seam) must never
        fire even with n_boot > 0."""
        from repro.stream import windows as windows_module

        def boom(self):
            raise AssertionError("window was materialised")

        monkeypatch.setattr(windows_module.Window, "to_dataset", boom)
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=500,
            n_boot=8, rng=np.random.default_rng(2),
        )
        observations = monitor.push(stream[:4_000])
        assert len(observations) == 5
        assert observations[-1].drifted

    def test_refit_models_still_materialises(self, drifting_stream):
        """refit_models re-mines from resampled rows, so that mode keeps
        the materialising path."""
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=500, step=500,
            n_boot=2, rng=np.random.default_rng(3), refit_models=True,
        )
        observations = monitor.push(stream[:1_500])
        assert len(observations) == 2
        assert all(0.0 <= o.significance <= 100.0 for o in observations)

    def test_reference_membership_compiled_once_per_reference(
        self, drifting_stream, monkeypatch
    ):
        """The reference rows' membership matrix is built once and reused
        by every window (and rebuilt only on a reference reset)."""
        from repro.stream import monitor as monitor_module

        calls = []
        real = monitor_module.lits_membership

        def counting(structure, index):
            calls.append(id(index))
            return real(structure, index)

        monkeypatch.setattr(monitor_module, "lits_membership", counting)
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=500,
            n_boot=4, rng=np.random.default_rng(4),
        )
        monitor.push(stream[:4_000])
        n_windows = len(monitor.history)
        assert n_windows >= 4
        reference_index = id(monitor.monitor._reference_dataset.index)
        reference_compiles = [i for i in calls if i == reference_index]
        # the reference block is compiled exactly once, and each
        # *chunk* exactly once when it enters -- surviving chunks are
        # never recompiled as the window slides over them
        assert len(reference_compiles) == 1
        n_chunks = (4_000 - 1_000) // 500
        assert len(calls) == 1 + n_chunks
        # strictly fewer compiles than a per-window recompute would pay
        chunks_per_window = 1_000 // 500
        assert len(calls) < 1 + n_windows * chunks_per_window
        assert calls[0] == reference_index

    def test_stream_significance_matches_offline_engine(self, drifting_stream):
        """A window qualified from sketches equals the offline
        count-space significance over the materialised pair, given the
        same generator state."""
        from repro.core.gcr import gcr
        from repro.stats.resample_plan import compile_resample_plan

        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=1_000,
            n_boot=10, rng=np.random.default_rng(17),
        )
        observations = monitor.push(stream[:2_000])
        assert len(observations) == 1

        reference = TransactionDataset(stream[:1_000], N_ITEMS)
        window = TransactionDataset(stream[1_000:2_000], N_ITEMS)
        model = builder(reference)
        structure = gcr(model.structure, model.structure)
        plan = compile_resample_plan(structure, reference, window)
        offline = plan.significance(10, np.random.default_rng(17))
        assert observations[0].significance == pytest.approx(
            offline.significance_percent
        )

    def test_bootstrap_fanning_plumbs_through(self, drifting_stream):
        """executor/n_blocks reach the inner monitor's bootstrap (the
        tutorial's fanning claim), and verdicts match the serial run
        given the same generator state."""
        stream, _ = drifting_stream
        kwargs = dict(window_size=1_000, step=1_000, n_boot=6)
        serial = OnlineChangeMonitor(
            builder, N_ITEMS, rng=np.random.default_rng(21), **kwargs
        )
        fanned = OnlineChangeMonitor(
            builder, N_ITEMS, rng=np.random.default_rng(21),
            executor="thread", n_blocks=3, **kwargs,
        )
        assert fanned.monitor.n_blocks == 3
        a = serial.push(stream[:3_000])
        b = fanned.push(stream[:3_000])
        assert [(o.significance, o.drifted) for o in a] == [
            (o.significance, o.drifted) for o in b
        ]

    def test_close_releases_pooled_workers(self, drifting_stream):
        """close() shuts the shared executor pool down deterministically
        (leaving teardown to interpreter exit can race CPython's atexit
        wakeup); the serial backend is a no-op."""
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=500, step=500,
            n_boot=0, delta_threshold=3.0, executor="thread", n_shards=2,
        )
        monitor.push(stream[:1_500])
        assert monitor.executor._pool is not None  # pool was used
        monitor.close()
        assert monitor.executor._pool is None
        # serial monitors close without complaint
        OnlineChangeMonitor(
            builder, N_ITEMS, window_size=500,
            n_boot=0, delta_threshold=1.0,
        ).close()
