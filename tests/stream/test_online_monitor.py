"""OnlineChangeMonitor: streaming drift detection over raw transactions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deviation import deviation_over_structure
from repro.core.lits import LitsModel
from repro.data.quest_basket import build_pattern_pool, generate_basket
from repro.data.transactions import TransactionDataset
from repro.errors import InvalidParameterError
from repro.stream.chunks import iter_chunks
from repro.stream.monitor import OnlineChangeMonitor

N_ITEMS = 50


def builder(dataset):
    return LitsModel.mine(dataset, 0.05, max_len=2)


@pytest.fixture(scope="module")
def drifting_stream():
    """3000 quiet rows, then 1500 rows from a shifted process."""
    rng = np.random.default_rng(5)
    pool = build_pattern_pool(
        rng, n_items=N_ITEMS, n_patterns=30, avg_pattern_len=3
    )
    quiet = generate_basket(
        3_000, n_items=N_ITEMS, avg_transaction_len=5, rng=rng, pool=pool
    )
    shifted = generate_basket(
        1_500, n_items=N_ITEMS, avg_transaction_len=5, n_patterns=30,
        avg_pattern_len=5, rng=rng,
    )
    return list(quiet) + list(shifted), 3_000


class TestCheapMode:
    """n_boot=0: drift by deviation threshold, fully incremental."""

    def test_detects_the_process_change(self, drifting_stream):
        stream, change_row = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=250,
            n_boot=0, delta_threshold=3.0,
        )
        observations = monitor.push(stream)
        assert len(observations) == (len(stream) - 1_000) // 250 - 3
        drifted = [o for o in observations if o.drifted]
        assert drifted, "the shifted process must be flagged"
        # No window fully before the change may drift; every window fully
        # after it must.
        quiet_windows = [o for o in observations if not o.drifted]
        assert all(o.deviation < 3.0 for o in quiet_windows)
        assert observations[-1].drifted

    def test_push_in_dribbles_equals_one_push(self, drifting_stream):
        stream, _ = drifting_stream
        kwargs = dict(
            window_size=1_000, step=500, n_boot=0, delta_threshold=3.0
        )
        all_at_once = OnlineChangeMonitor(builder, N_ITEMS, **kwargs)
        dribbled = OnlineChangeMonitor(builder, N_ITEMS, **kwargs)
        expected = all_at_once.push(stream)
        got = []
        for chunk in iter_chunks(stream, 333):
            got.extend(dribbled.push(chunk))
        assert [(o.index, o.deviation, o.drifted) for o in got] == [
            (o.index, o.deviation, o.drifted) for o in expected
        ]

    def test_deviation_matches_offline_delta1(self, drifting_stream):
        """The sketch-maintained delta equals deviation_over_structure on
        materialised datasets (reference structure, same f and g)."""
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=500,
            n_boot=0, delta_threshold=3.0,
        )
        observations = monitor.push(stream[:3_000])
        reference = TransactionDataset(stream[:1_000], N_ITEMS)
        structure = builder(reference).structure
        for i, obs in enumerate(observations):
            start = 1_000 + i * 500
            window = TransactionDataset(
                stream[start : start + 1_000], N_ITEMS
            )
            offline = deviation_over_structure(structure, reference, window)
            assert obs.deviation == pytest.approx(offline.value, abs=1e-6)

    def test_no_observation_before_first_window(self, drifting_stream):
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=500,
            n_boot=0, delta_threshold=3.0,
        )
        assert monitor.push(stream[:999]) == []
        assert monitor.is_warming_up
        assert monitor.push(stream[999:1_999]) == []  # window forming
        assert not monitor.is_warming_up
        assert len(monitor.push(stream[1_999:2_000])) == 1

    def test_rows_sketched_counts_each_row_once(self, drifting_stream):
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=250,
            n_boot=0, delta_threshold=3.0,
        )
        monitor.push(stream)
        monitored_rows = len(stream) - 1_000  # reference is not sketched
        assert monitor.rows_sketched == monitored_rows - monitored_rows % 250


class TestBootstrapMode:
    def test_quiet_then_drift_with_significance(self, drifting_stream):
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=1_000,
            n_boot=12, rng=np.random.default_rng(8),
        )
        observations = monitor.push(stream[:4_000])
        assert len(observations) == 3
        assert not observations[0].drifted  # quiet window
        assert observations[-1].drifted  # fully shifted window
        assert observations[-1].significance >= 95.0
        assert monitor.drift_points() == [
            o.index for o in observations if o.drifted
        ]


class TestResetOnDrift:
    def test_reference_moves_and_windows_retrack(self, drifting_stream):
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=500,
            n_boot=0, delta_threshold=3.0, policy="reset_on_drift",
        )
        observations = monitor.push(stream)
        first_drift = next(o for o in observations if o.drifted)
        after = [o for o in observations if o.index > first_drift.index]
        assert after, "stream continues past the reset"
        # the observation right after a drift compares to the promoted window
        assert after[0].reference_index == first_drift.index
        # the reference is only ever the initial one or a drifted snapshot
        drifted_indices = {o.index for o in observations if o.drifted} | {0}
        assert all(o.reference_index in drifted_indices for o in observations)
        # the tail (same shifted process as its reference) is quiet again
        assert not after[-1].drifted
        # the lifetime scan count survives the window-manager rebuilds:
        # every monitored row once, plus one window re-sketch per reset
        monitored = len(stream) - 1_000
        n_resets = sum(o.drifted for o in observations)
        assert monitor.rows_sketched == monitored + n_resets * 1_000


class TestValidation:
    def test_step_must_divide_window(self):
        with pytest.raises(InvalidParameterError):
            OnlineChangeMonitor(
                builder, N_ITEMS, window_size=1_000, step=300,
                n_boot=0, delta_threshold=1.0,
            )

    def test_cheap_mode_needs_delta_threshold(self):
        with pytest.raises(InvalidParameterError):
            OnlineChangeMonitor(builder, N_ITEMS, window_size=100, n_boot=0)

    def test_bad_universe_and_window(self):
        with pytest.raises(InvalidParameterError):
            OnlineChangeMonitor(builder, 0, window_size=100)
        with pytest.raises(InvalidParameterError):
            OnlineChangeMonitor(builder, N_ITEMS, window_size=0)

    def test_non_lits_builder_rejected_at_start(self, drifting_stream):
        stream, _ = drifting_stream

        class NotALitsModel:
            pass

        monitor = OnlineChangeMonitor(
            lambda d: NotALitsModel(), N_ITEMS, window_size=500, step=500,
            n_boot=0, delta_threshold=1.0,
        )
        with pytest.raises(InvalidParameterError):
            monitor.push(stream[:1_000])

    def test_monitor_stream_generator(self, drifting_stream):
        stream, _ = drifting_stream
        monitor = OnlineChangeMonitor(
            builder, N_ITEMS, window_size=500, step=500,
            n_boot=0, delta_threshold=3.0,
        )
        observations = list(
            monitor.monitor_stream(iter_chunks(stream[:2_000], 250))
        )
        assert len(observations) == 3
        assert [o.index for o in observations] == [1, 2, 3]
