"""Tabular streaming: partition windows and the tabular online monitor.

The dt-/cluster-model counterpart of ``test_window_manager.py`` and
``test_online_monitor.py``: windows over tabular chunks are maintained
by partition-sketch add/subtract (no rescan of surviving rows), the
online monitor drives a dt-model reference over a tabular stream, and
``flush`` drains the trailing partial window for both kinds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deviation import deviation_over_structure
from repro.core.dtree_model import DtModel
from repro.core.lits import LitsModel
from repro.data.quest_basket import generate_basket
from repro.data.quest_classify import generate_classification
from repro.data.tabular import TabularDataset
from repro.errors import InvalidParameterError
from repro.mining.tree.builder import TreeParams
from repro.stream.chunks import iter_tabular_chunks
from repro.stream.monitor import OnlineChangeMonitor
from repro.stream.windows import PartitionChunkSketcher, WindowManager


def dt_builder(dataset):
    return DtModel.fit(dataset, TreeParams(max_depth=4, min_leaf=20))


@pytest.fixture(scope="module")
def drifting_table():
    """2000 rows labelled by F1, then 1000 rows labelled by F5."""
    quiet = generate_classification(2_000, function=1, seed=31)
    shifted = generate_classification(1_000, function=5, seed=32)
    return quiet.concat(shifted), 2_000


@pytest.fixture(scope="module")
def reference_structure(drifting_table):
    table, _ = drifting_table
    return dt_builder(table.slice_rows(0, 1_000)).structure


class TestTabularWindowManager:
    def test_sliding_windows_match_rebuild(self, drifting_table, reference_structure):
        table, _ = drifting_table
        structure = reference_structure
        manager = WindowManager(
            PartitionChunkSketcher(structure.plan), window_chunks=4
        )
        windows = list(
            manager.push_many(iter_tabular_chunks(table.slice_rows(0, 2_800), 200))
        )
        assert len(windows) == 11
        for window in windows:
            rebuilt = table.slice_rows(window.start, window.stop)
            np.testing.assert_array_equal(
                window.sketch.counts, structure.counts(rebuilt)
            )
        assert manager.rows_sketched == 2_800

    def test_tumbling_flush_emits_partial_window(self, reference_structure):
        structure = reference_structure
        table = generate_classification(500, function=1, seed=7)
        manager = WindowManager(
            PartitionChunkSketcher(structure.plan),
            window_chunks=2,
            policy="tumbling",
        )
        windows = list(manager.push_many(iter_tabular_chunks(table, 200)))
        assert len(windows) == 1  # rows 0..400
        partial = manager.flush()
        assert partial is not None
        assert (partial.start, partial.stop) == (400, 500)
        np.testing.assert_array_equal(
            partial.sketch.counts,
            structure.counts(table.slice_rows(400, 500)),
        )
        assert manager.flush() is None  # nothing left

    def test_window_to_dataset_concatenates_chunks(self, drifting_table, reference_structure):
        table, _ = drifting_table
        manager = WindowManager(
            PartitionChunkSketcher(reference_structure.plan), window_chunks=3
        )
        (window,) = manager.push_many(
            iter_tabular_chunks(table.slice_rows(0, 600), 200)
        )
        snapshot = window.to_dataset()
        assert isinstance(snapshot, TabularDataset)
        np.testing.assert_array_equal(snapshot.X, table.X[:600])
        np.testing.assert_array_equal(snapshot.y, table.y[:600])

    def test_sketcher_form_rejects_n_items(self, reference_structure):
        with pytest.raises(InvalidParameterError):
            WindowManager(
                PartitionChunkSketcher(reference_structure.plan),
                n_items=5,
                window_chunks=2,
            )


class TestTabularOnlineMonitor:
    def test_detects_the_labelling_change(self, drifting_table):
        table, change_row = drifting_table
        monitor = OnlineChangeMonitor(
            dt_builder, window_size=1_000, step=250, kind="tabular",
            n_boot=0, delta_threshold=0.3,
        )
        observations = []
        for chunk in iter_tabular_chunks(table, 250):
            observations.extend(monitor.push(chunk))
        assert observations, "windows must have been monitored"
        assert observations[-1].drifted
        drift_rows = [
            1_000 + o.index * 250 for o in observations if o.drifted
        ]
        assert all(row + 1_000 > change_row for row in drift_rows)

    def test_deviation_matches_offline_delta1(self, drifting_table):
        table, _ = drifting_table
        monitor = OnlineChangeMonitor(
            dt_builder, window_size=1_000, step=500, kind="tabular",
            n_boot=0, delta_threshold=0.3,
        )
        observations = []
        for chunk in iter_tabular_chunks(table.slice_rows(0, 3_000), 500):
            observations.extend(monitor.push(chunk))
        reference = table.slice_rows(0, 1_000)
        structure = dt_builder(reference).structure
        for i, obs in enumerate(observations):
            start = 1_000 + i * 500
            window = table.slice_rows(start, start + 1_000)
            offline = deviation_over_structure(structure, reference, window)
            assert obs.deviation == pytest.approx(offline.value, abs=1e-9)

    def test_bootstrap_mode_needs_no_window_rows(
        self, drifting_table, monkeypatch
    ):
        """Partition regions are disjoint, so the bootstrap null is a
        multinomial over the pooled region counts -- the window is never
        materialised (Window.to_dataset must not fire) and the verdicts
        still come out right."""
        from repro.stream import windows as windows_module

        def boom(self):
            raise AssertionError("window was materialised")

        monkeypatch.setattr(windows_module.Window, "to_dataset", boom)
        table, _ = drifting_table
        monitor = OnlineChangeMonitor(
            dt_builder, window_size=500, step=500, kind="tabular",
            n_boot=8, rng=np.random.default_rng(3),
        )
        observations = []
        for chunk in iter_tabular_chunks(table.slice_rows(0, 3_000), 500):
            observations.extend(monitor.push(chunk))
        assert len(observations) == 5
        assert observations[-1].drifted
        assert observations[-1].significance >= 95.0

    def test_flush_reports_trailing_rows(self, drifting_table):
        table, _ = drifting_table
        monitor = OnlineChangeMonitor(
            dt_builder, window_size=1_000, step=1_000, kind="tabular",
            n_boot=0, delta_threshold=0.3,
        )
        observations = []
        # 2,300 rows: reference + one full window + 300 trailing rows
        for chunk in iter_tabular_chunks(table.slice_rows(0, 2_300), 500):
            observations.extend(monitor.push(chunk))
        assert len(observations) == 1
        flushed = monitor.flush()
        assert len(flushed) == 1
        assert len(monitor.history) == 2
        # the partial window measures exactly rows 2000..2300
        reference = table.slice_rows(0, 1_000)
        structure = dt_builder(reference).structure
        offline = deviation_over_structure(
            structure, reference, table.slice_rows(2_000, 2_300)
        )
        assert flushed[0].deviation == pytest.approx(offline.value, abs=1e-9)

    def test_flush_reports_a_sliding_stream_that_never_filled_a_window(self):
        """Regression: a sliding tail shorter than one window still reports."""
        table = generate_classification(1_600, function=1, seed=13)
        monitor = OnlineChangeMonitor(
            dt_builder, window_size=1_000, step=250, kind="tabular",
            n_boot=0, delta_threshold=0.5,
        )
        observations = []
        # 1,000 reference rows + 600 monitored rows: never a full window
        for chunk in iter_tabular_chunks(table, 250):
            observations.extend(monitor.push(chunk))
        assert observations == []
        flushed = monitor.flush()
        assert len(flushed) == 1  # the 600-row partial window
        reference = table.slice_rows(0, 1_000)
        structure = dt_builder(reference).structure
        offline = deviation_over_structure(
            structure, reference, table.slice_rows(1_000, 1_600)
        )
        assert flushed[0].deviation == pytest.approx(offline.value, abs=1e-9)
        # a second flush has nothing left to report
        assert monitor.flush() == []

    def test_sliding_flush_noop_when_tail_already_windowed(self, drifting_table):
        """Once a sliding window emitted, the tail is inside it: no dupes."""
        table, _ = drifting_table
        monitor = OnlineChangeMonitor(
            dt_builder, window_size=1_000, step=500, kind="tabular",
            n_boot=0, delta_threshold=0.5,
        )
        observations = []
        for chunk in iter_tabular_chunks(table.slice_rows(0, 2_500), 500):
            observations.extend(monitor.push(chunk))
        assert len(observations) == 2  # windows ending at rows 2000, 2500
        assert monitor.flush() == []

    def test_flush_during_warmup_is_empty(self):
        monitor = OnlineChangeMonitor(
            dt_builder, window_size=1_000, kind="tabular",
            n_boot=0, delta_threshold=0.3,
        )
        monitor.push(generate_classification(400, function=1, seed=1))
        assert monitor.flush() == []
        assert monitor.is_warming_up

    def test_reset_on_drift_retracks_partition_reference(self, drifting_table):
        table, _ = drifting_table
        monitor = OnlineChangeMonitor(
            dt_builder, window_size=500, step=250, kind="tabular",
            n_boot=0, delta_threshold=0.5, policy="reset_on_drift",
        )
        observations = []
        for chunk in iter_tabular_chunks(table, 250):
            observations.extend(monitor.push(chunk))
        first_drift = next(o for o in observations if o.drifted)
        after = [o for o in observations if o.index > first_drift.index]
        assert after, "stream continues past the reset"
        assert after[0].reference_index == first_drift.index
        # the tail (same labelling process as its new reference) is quiet
        assert not after[-1].drifted

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            OnlineChangeMonitor(
                dt_builder, 50, window_size=100, kind="tabular",
                n_boot=0, delta_threshold=0.1,
            )  # n_items is a transactions-only parameter
        with pytest.raises(InvalidParameterError):
            OnlineChangeMonitor(
                dt_builder, window_size=100, kind="sql",
                n_boot=0, delta_threshold=0.1,
            )
        class NotAPartitionModel:
            pass

        monitor = OnlineChangeMonitor(
            lambda d: NotAPartitionModel(), window_size=100, kind="tabular",
            n_boot=0, delta_threshold=0.1,
        )
        with pytest.raises(InvalidParameterError):
            monitor.push(generate_classification(200, function=1, seed=2))

    def test_non_dataset_chunk_rejected(self):
        monitor = OnlineChangeMonitor(
            dt_builder, window_size=100, kind="tabular",
            n_boot=0, delta_threshold=0.1,
        )
        with pytest.raises(InvalidParameterError):
            monitor.push([(1, 2, 3)])


class TestTransactionFlush:
    def test_flush_emits_the_trailing_partial_window(self):
        stream = list(
            generate_basket(2_300, n_items=40, avg_transaction_len=5, seed=9)
        )
        monitor = OnlineChangeMonitor(
            lambda d: LitsModel.mine(d, 0.05, max_len=2),
            40, window_size=1_000, step=1_000,
            n_boot=0, delta_threshold=100.0,
        )
        observations = monitor.push(stream)
        assert len(observations) == 1  # rows 1000..2000
        flushed = monitor.flush()
        assert len(flushed) == 1  # rows 2000..2300, the trailing 300
        assert len(monitor.history) == 2
        assert monitor.rows_sketched == 1_300

    def test_flush_with_nothing_pending_is_empty(self):
        stream = list(
            generate_basket(2_000, n_items=40, avg_transaction_len=5, seed=9)
        )
        monitor = OnlineChangeMonitor(
            lambda d: LitsModel.mine(d, 0.05, max_len=2),
            40, window_size=1_000, step=1_000,
            n_boot=0, delta_threshold=100.0,
        )
        monitor.push(stream)
        assert monitor.flush() == []
