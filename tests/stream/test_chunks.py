"""Chunked sources and the appendable TransactionLog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.io import save_transactions
from repro.data.transactions import TransactionDataset
from repro.errors import InvalidParameterError
from repro.mining.apriori import apriori, apriori_from_index
from repro.stream.chunks import (
    TransactionLog,
    iter_chunks,
    stream_transaction_chunks,
)

TXNS = [(0, 1), (1, 2), (2,), (), (0, 1, 2), (1,), (0,)]


class TestIterChunks:
    def test_exact_and_partial_chunks(self):
        chunks = list(iter_chunks(TXNS, 3))
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert [t for c in chunks for t in c] == TXNS

    def test_rows_pass_through_as_tuples(self):
        chunks = list(iter_chunks([[2, 1, 1], [0]], 10))
        assert chunks == [[(2, 1, 1), (0,)]]

    def test_bad_chunk_size(self):
        with pytest.raises(InvalidParameterError):
            list(iter_chunks(TXNS, 0))

    def test_lazy_over_generators(self):
        def infinite():
            i = 0
            while True:
                yield (i % 5,)
                i += 1

        chunks = iter_chunks(infinite(), 4)
        assert len(next(chunks)) == 4  # does not exhaust the source


class TestStreamTransactionChunks:
    def test_round_trips_saved_file(self, tmp_path):
        dataset = TransactionDataset(TXNS, 3)
        path = tmp_path / "txns.txt"
        save_transactions(dataset, path)
        n_items, chunks = stream_transaction_chunks(path, 2)
        assert n_items == 3
        rows = [t for c in chunks for t in c]
        assert rows == list(dataset)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "raw.txt"
        path.write_text("0 1\n2\n")
        with pytest.raises(InvalidParameterError):
            stream_transaction_chunks(path, 2)


class TestTransactionLog:
    def test_append_matches_immutable_dataset(self):
        log = TransactionLog(3)
        log.append(TXNS[:3]).append(TXNS[3:])
        dataset = TransactionDataset(TXNS, 3)
        assert len(log) == len(dataset)
        assert list(log) == list(dataset)
        probes = [(0,), (1, 2), ()]
        for probe in probes:
            assert log.support_count(probe) == dataset.support_count(probe)

    def test_incremental_mining_never_rebuilds(self):
        rng = np.random.default_rng(3)
        txns = [
            tuple(sorted(set(rng.integers(0, 10, size=4).tolist())))
            for _ in range(300)
        ]
        log = TransactionLog(10)
        index_id = id(log.index)
        for start in range(0, 300, 100):
            log.append(txns[start : start + 100])
            mined = apriori(log, 0.1, max_len=2)
            oracle = apriori(
                TransactionDataset(txns[: start + 100], 10), 0.1, max_len=2
            )
            assert mined == oracle
        assert id(log.index) == index_id  # same index object throughout

    def test_apriori_from_index_directly(self):
        log = TransactionLog(3, TXNS)
        assert apriori_from_index(log.index, 0.2) == apriori(
            TransactionDataset(TXNS, 3), 0.2
        )

    def test_out_of_range_items_rejected(self):
        log = TransactionLog(3)
        with pytest.raises(InvalidParameterError):
            log.append([(5,)])

    def test_take_and_to_dataset_snapshots(self):
        log = TransactionLog(3, TXNS)
        snap = log.to_dataset()
        assert isinstance(snap, TransactionDataset)
        assert list(snap) == list(log)
        picked = log.take(np.array([0, 2, 4]))
        assert list(picked) == [TXNS[0], TXNS[2], TXNS[4]]

    def test_invalid_universe(self):
        with pytest.raises(InvalidParameterError):
            TransactionLog(0)
