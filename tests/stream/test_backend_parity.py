"""Backend parity: the mmap stripe store is bit-identical to RAM.

The out-of-core backend's whole contract is *indistinguishability*:
every count, label routing, sketch merge, and bootstrap null computed
over memory-mapped stripes must equal the in-RAM arrays bit for bit,
across the serial / thread / process executors. The hypothesis suite
pins that over arbitrary row bags; the process-fan tests additionally
pin the zero-copy invariant (``storage.bytes_shipped == 0`` on the mmap
backend) and that a dataset larger than the scan budget still completes
a full chunked scan with exact row accounting.

Stores are created in ``tempfile.TemporaryDirectory`` blocks inside the
test bodies (not the function-scoped ``tmp_path`` fixture), so the
hypothesis health checks see no fixture reuse across examples.
"""

from __future__ import annotations

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attribute import AttributeSpace, numeric
from repro.core.lits import LitsModel
from repro.core.model import LitsStructure
from repro.obs import MetricsRegistry, use_registry
from repro.stats.bootstrap import deviation_significance
from repro.stream.chunks import TabularLog, TransactionLog
from repro.stream.executor import sharded_index_sketch, sketch_index_shards
from repro.stream.sketch import PartitionSketch, SupportSketch

N_ITEMS = 10

transactions_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=N_ITEMS - 1), max_size=5),
    max_size=50,
)

itemsets_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=N_ITEMS - 1), max_size=3),
    min_size=1,
    max_size=8,
).map(lambda sets: [*sets, []])


def _both_logs(txns, stripe_dir):
    ram = TransactionLog(N_ITEMS, txns)
    mm = TransactionLog(N_ITEMS, txns, backend="mmap", stripe_dir=stripe_dir)
    return ram, mm


# --------------------------------------------------------------------- #
# Support counts
# --------------------------------------------------------------------- #


class TestSupportCountParity:
    @given(txns=transactions_strategy, itemsets=itemsets_strategy)
    @settings(max_examples=40, deadline=None)
    def test_counts_and_chunked_scans_match(self, txns, itemsets):
        with tempfile.TemporaryDirectory() as d:
            ram, mm = _both_logs(txns, d)
            ref = ram.index.support_counts(itemsets)
            assert np.array_equal(mm.index.support_counts(itemsets), ref)
            # a chunked scan under an absurdly small budget must agree
            # with the one-shot count on both backends
            for log in (ram, mm):
                assert np.array_equal(
                    log.index.scan_counts(itemsets, budget_bytes=64), ref
                )

    @given(
        txns=transactions_strategy,
        itemsets=itemsets_strategy,
        n_shards=st.integers(min_value=1, max_value=5),
        executor=st.sampled_from(["serial", "thread"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_sharded_index_sketch_matches(
        self, txns, itemsets, n_shards, executor
    ):
        ref = SupportSketch.from_transactions(txns, itemsets, N_ITEMS)
        with tempfile.TemporaryDirectory() as d:
            ram, mm = _both_logs(txns, d)
            for log in (ram, mm):
                merged = sharded_index_sketch(
                    log.index, itemsets, n_shards=n_shards, executor=executor
                )
                assert np.array_equal(merged.counts, ref.counts)
                assert merged.n_transactions == ref.n_transactions

    @given(txns=transactions_strategy)
    @settings(max_examples=25, deadline=None)
    def test_rows_round_trip(self, txns):
        canonical = [tuple(sorted(set(t))) for t in txns]
        with tempfile.TemporaryDirectory() as d:
            _, mm = _both_logs(txns, d)
            assert mm.transactions == canonical
            assert list(iter(mm)) == canonical
            if canonical:
                picks = [0, len(canonical) - 1, len(canonical) // 2]
                taken = mm.take(picks)
                assert list(taken) == [canonical[i] for i in picks]


# --------------------------------------------------------------------- #
# Partition label routing (TabularLog)
# --------------------------------------------------------------------- #

SPACE = AttributeSpace(
    (numeric("age", 0.0, 1.0), numeric("height", 0.0, 1.0)),
    class_labels=(0, 1),
)

tabular_rows = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.999),
        st.floats(min_value=0.0, max_value=0.999),
        st.integers(min_value=0, max_value=1),
    ),
    max_size=60,
)


def _tab_structure():
    from repro.core.model import PartitionStructure
    from repro.core.predicate import interval_constraint

    def assigner(dataset):
        return (dataset.column("age") >= 0.5).astype(np.int64)

    return PartitionStructure(
        cells=(
            interval_constraint("age", hi=0.5),
            interval_constraint("age", lo=0.5),
        ),
        class_labels=(0, 1),
        assigner=assigner,
    )


class TestTabularLogParity:
    @given(rows=tabular_rows)
    @settings(max_examples=30, deadline=None)
    def test_rows_labels_and_partition_counts_match(self, rows):
        X = np.array([[a, h] for a, h, _ in rows]).reshape(-1, 2)
        y = np.array([label for _, _, label in rows], dtype=np.int64)
        structure = _tab_structure()
        ram = TabularLog(SPACE, capacity=1)
        ram.append(X, y)
        with tempfile.TemporaryDirectory() as d:
            mm = TabularLog(SPACE, capacity=1, backend="mmap", stripe_dir=d)
            mm.append(X, y)
            assert np.array_equal(mm.X, ram.X)
            assert np.array_equal(mm.y, ram.y)
            s_ram = PartitionSketch.from_dataset(ram.to_dataset(), structure)
            s_mm = PartitionSketch.from_dataset(mm.to_dataset(), structure)
            assert np.array_equal(s_ram.counts, s_mm.counts)


# --------------------------------------------------------------------- #
# Bootstrap nulls
# --------------------------------------------------------------------- #


class TestBootstrapParity:
    @given(
        txns1=transactions_strategy.filter(lambda t: len(t) >= 2),
        txns2=transactions_strategy.filter(lambda t: len(t) >= 2),
    )
    @settings(max_examples=15, deadline=None)
    def test_null_identical_across_backends_and_plans(self, txns1, txns2):
        def sig(d1, d2, **kw):
            m1 = LitsModel.mine(d1, 0.2, max_len=2)
            m2 = LitsModel.mine(d2, 0.2, max_len=2)
            return deviation_significance(
                d1, d2, n_boot=12, rng=np.random.default_rng(11),
                models=(m1, m2), **kw,
            )

        with tempfile.TemporaryDirectory() as d:
            ram1 = TransactionLog(N_ITEMS, txns1).to_dataset(share_index=True)
            ram2 = TransactionLog(N_ITEMS, txns2).to_dataset(share_index=True)
            mm1 = TransactionLog(
                N_ITEMS, txns1, backend="mmap", stripe_dir=d + "/1"
            ).to_dataset(share_index=True)
            mm2 = TransactionLog(
                N_ITEMS, txns2, backend="mmap", stripe_dir=d + "/2"
            ).to_dataset(share_index=True)
            ref = sig(ram1, ram2)
            for kw in (
                {},  # mmap, dense plan
                {"max_membership_bytes": 1},  # mmap, packed plan
            ):
                got = sig(mm1, mm2, **kw)
                assert got.observed == ref.observed
                assert np.array_equal(got.null_values, ref.null_values)


# --------------------------------------------------------------------- #
# Zero-copy process fans + budget-exceeded windowed scans
# --------------------------------------------------------------------- #


class TestZeroCopyFan:
    ITEMSETS = [(0,), (1, 2), (3,), (2, 4), ()]

    def _rows(self, n=600):
        rng = np.random.default_rng(5)
        return [
            tuple(
                sorted(rng.choice(N_ITEMS, size=rng.integers(1, 5), replace=False))
            )
            for _ in range(n)
        ]

    def test_process_fan_ships_zero_bytes_on_mmap(self, tmp_path):
        rows = self._rows()
        mm = TransactionLog(
            N_ITEMS, rows, backend="mmap", stripe_dir=tmp_path / "s"
        )
        ref = SupportSketch.from_transactions(rows, self.ITEMSETS, N_ITEMS)
        registry = MetricsRegistry()
        with use_registry(registry):
            merged = sharded_index_sketch(
                mm.index, self.ITEMSETS, n_shards=4, executor="process"
            )
        counters = registry.snapshot()["counters"]
        assert counters.get("storage.bytes_shipped", 0) == 0
        assert counters["stream.shards.sketched"] == 4
        assert np.array_equal(merged.counts, ref.counts)

    def test_process_fan_on_ram_backend_pays_the_bytes(self, tmp_path):
        rows = self._rows()
        ram = TransactionLog(N_ITEMS, rows)
        registry = MetricsRegistry()
        with use_registry(registry):
            sketch_index_shards(
                ram.index, self.ITEMSETS, n_shards=3, executor="process"
            )
        counters = registry.snapshot()["counters"]
        assert (
            counters["storage.bytes_shipped"] == 3 * ram.index._buf.nbytes
        )

    def test_budget_exceeded_scan_completes_with_exact_accounting(
        self, tmp_path
    ):
        rows = self._rows(1200)
        mm = TransactionLog(
            N_ITEMS, rows, backend="mmap", stripe_dir=tmp_path / "s"
        )
        # a budget far below the stripe bytes: the scan must chunk
        budget = 128
        assert mm.index._buf.nbytes > budget
        registry = MetricsRegistry()
        with use_registry(registry):
            counts = mm.index.scan_counts(self.ITEMSETS, budget_bytes=budget)
        assert np.array_equal(
            counts, mm.index.support_counts(self.ITEMSETS)
        )
        counters = registry.snapshot()["counters"]
        assert counters["storage.rows_scanned"] == len(rows)
        assert counters["storage.chunks_scanned"] > 1

    def test_pickled_mmap_index_is_attached_readonly(self, tmp_path):
        import pickle

        from repro.errors import InvalidParameterError

        rows = self._rows(100)
        mm = TransactionLog(
            N_ITEMS, rows, backend="mmap", stripe_dir=tmp_path / "s"
        )
        clone = pickle.loads(pickle.dumps(mm.index))
        assert np.array_equal(
            clone.support_counts(self.ITEMSETS),
            mm.index.support_counts(self.ITEMSETS),
        )
        with pytest.raises(InvalidParameterError):
            clone.append([(0,)])
