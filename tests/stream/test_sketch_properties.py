"""Hypothesis properties: shard-merge and incremental-append correctness.

The two invariants the whole streaming layer rests on:

* **merge**: for ANY partition of a transaction bag into shards
  (including empty shards), the sum of per-shard sketches equals the
  single-scan counts over the whole bag -- with the empty itemset
  (support = everything) tracked too;
* **append**: a BitmapIndex grown by arbitrary appends answers every
  support query exactly like one built from the full data at once.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.transactions import BitmapIndex, TransactionDataset
from repro.stream.executor import sharded_support_sketch
from repro.stream.sketch import SupportSketch

N_ITEMS = 12

transactions_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=N_ITEMS - 1), max_size=6
    ),
    max_size=60,
)

itemsets_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=N_ITEMS - 1), max_size=4
    ),
    min_size=1,
    max_size=15,
).map(lambda sets: [*sets, []])  # always include the empty itemset


@st.composite
def partitioned_transactions(draw):
    """A transaction bag plus an arbitrary partition into shards."""
    txns = draw(transactions_strategy)
    n_shards = draw(st.integers(min_value=1, max_value=6))
    assignment = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_shards - 1),
            min_size=len(txns),
            max_size=len(txns),
        )
    )
    shards: list[list] = [[] for _ in range(n_shards)]
    for txn, shard in zip(txns, assignment):
        shards[shard].append(txn)
    return txns, shards


class TestShardMergeProperty:
    @given(data=partitioned_transactions(), itemsets=itemsets_strategy)
    @settings(max_examples=60, deadline=None)
    def test_sum_of_shard_sketches_equals_single_scan(self, data, itemsets):
        txns, shards = data
        single = SupportSketch.from_transactions(txns, itemsets, N_ITEMS)
        merged = sum(
            (
                SupportSketch.from_transactions(s, itemsets, N_ITEMS)
                for s in shards
            ),
            SupportSketch.empty(itemsets, N_ITEMS),
        )
        assert merged == single
        # The empty itemset's count is the total transaction count.
        assert merged.count_of(()) == len(txns)

    @given(data=partitioned_transactions(), itemsets=itemsets_strategy)
    @settings(max_examples=30, deadline=None)
    def test_sharded_helper_equals_single_scan(self, data, itemsets):
        txns, _ = data
        for n_shards in (1, 3, len(txns) + 1):
            merged = sharded_support_sketch(
                txns, itemsets, N_ITEMS, n_shards=n_shards
            )
            assert merged == SupportSketch.from_transactions(
                txns, itemsets, N_ITEMS
            )

    @given(data=partitioned_transactions(), itemsets=itemsets_strategy)
    @settings(max_examples=30, deadline=None)
    def test_prefix_subtraction_equals_suffix_scan(self, data, itemsets):
        """whole - prefix == suffix: the sliding-window retirement step."""
        txns, _ = data
        cut = len(txns) // 2
        whole = SupportSketch.from_transactions(txns, itemsets, N_ITEMS)
        prefix = SupportSketch.from_transactions(txns[:cut], itemsets, N_ITEMS)
        suffix = SupportSketch.from_transactions(txns[cut:], itemsets, N_ITEMS)
        assert whole - prefix == suffix


@st.composite
def chunked_transactions(draw):
    """A transaction bag plus an arbitrary chunking (in order)."""
    txns = draw(transactions_strategy)
    cuts = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(txns)),
            max_size=5,
        )
    )
    bounds = sorted(set(cuts) | {0, len(txns)})
    chunks = [
        txns[lo:hi] for lo, hi in zip(bounds, bounds[1:])
    ]
    return txns, chunks


class TestIncrementalAppendProperty:
    @given(data=chunked_transactions(), itemsets=itemsets_strategy)
    @settings(max_examples=60, deadline=None)
    def test_appended_index_equals_full_build(self, data, itemsets):
        txns, chunks = data
        canon = [tuple(sorted({int(i) for i in t})) for t in txns]
        full = BitmapIndex(canon, N_ITEMS)
        grown = BitmapIndex([], N_ITEMS)
        for chunk in chunks:
            grown.append(chunk)
        assert grown.n_transactions == full.n_transactions
        np.testing.assert_array_equal(
            grown.support_counts(itemsets), full.support_counts(itemsets)
        )
        np.testing.assert_array_equal(
            grown.item_support_counts(), full.item_support_counts()
        )

    @given(data=chunked_transactions())
    @settings(max_examples=30, deadline=None)
    def test_appended_index_agrees_with_brute_force(self, data):
        txns, chunks = data
        grown = BitmapIndex([], N_ITEMS)
        for chunk in chunks:
            grown.append(chunk)
        probes = [(0,), (1, 2), (0, 3, 5), ()]
        for probe in probes:
            brute = sum(1 for t in txns if set(probe) <= set(t))
            assert grown.support_count(probe) == brute

    @given(data=chunked_transactions(), itemsets=itemsets_strategy)
    @settings(max_examples=20, deadline=None)
    def test_transaction_log_tracks_dataset(self, data, itemsets):
        from repro.stream.chunks import TransactionLog

        txns, chunks = data
        log = TransactionLog(N_ITEMS)
        for chunk in chunks:
            log.append(chunk)
        dataset = TransactionDataset(txns, N_ITEMS)
        np.testing.assert_array_equal(
            log.index.support_counts(itemsets),
            dataset.index.support_counts(itemsets),
        )
        assert len(log) == len(dataset)
