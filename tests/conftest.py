"""Shared fixtures: small deterministic datasets and hand-built models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attribute import AttributeSpace, numeric
from repro.data.quest_basket import generate_basket
from repro.data.quest_classify import generate_classification
from repro.data.tabular import TabularDataset
from repro.data.transactions import TransactionDataset


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def two_d_space() -> AttributeSpace:
    """An (age, salary) space with two classes, as in the paper's figures."""
    return AttributeSpace(
        attributes=(numeric("age", 0, 100), numeric("salary", 0, 200_000)),
        class_labels=(0, 1),
    )


@pytest.fixture
def small_tabular(two_d_space, rng) -> TabularDataset:
    """300 random labelled points over the (age, salary) space."""
    n = 300
    X = np.column_stack(
        [rng.uniform(0, 100, n), rng.uniform(0, 200_000, n)]
    )
    y = (X[:, 0] + X[:, 1] / 2_000 > 80).astype(np.int64)
    return TabularDataset(two_d_space, X, y)


@pytest.fixture
def small_transactions() -> TransactionDataset:
    """A tiny fixed transaction dataset over 5 items."""
    txns = [
        (0, 1),
        (0, 1, 2),
        (0,),
        (1, 2),
        (2,),
        (0, 1),
        (3,),
        (0, 2, 3),
        (1,),
        (0, 1, 3),
    ]
    return TransactionDataset(txns, n_items=5)


@pytest.fixture
def basket_pair():
    """Two small generated basket datasets from different processes."""
    d1 = generate_basket(
        800, n_items=40, avg_transaction_len=6, n_patterns=40,
        avg_pattern_len=3, seed=11,
    )
    d2 = generate_basket(
        800, n_items=40, avg_transaction_len=6, n_patterns=40,
        avg_pattern_len=4, seed=22,
    )
    return d1, d2


@pytest.fixture
def classify_pair():
    """Two small generated classification datasets (F1 vs F2)."""
    d1 = generate_classification(1_200, function=1, seed=11)
    d2 = generate_classification(1_200, function=2, seed=22)
    return d1, d2
