"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import main


def run_cli(argv) -> str:
    out = io.StringIO()
    code = main(argv, out=out)
    assert code == 0
    return out.getvalue()


class TestGenerate:
    def test_generate_basket(self, tmp_path):
        path = tmp_path / "txns.txt"
        text = run_cli(
            ["generate-basket", "--out", str(path), "--n", "200",
             "--items", "50", "--seed", "1"]
        )
        assert "200 transactions" in text
        assert path.exists()

    def test_generate_classify(self, tmp_path):
        path = tmp_path / "people.npz"
        text = run_cli(
            ["generate-classify", "--out", str(path), "--n", "300",
             "--function", "2", "--seed", "1"]
        )
        assert "300 tuples" in text
        assert path.exists()


class TestMineAndCompare:
    @pytest.fixture
    def basket_files(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        run_cli(["generate-basket", "--out", str(a), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--seed", "1"])
        run_cli(["generate-basket", "--out", str(b), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--pattern-len", "6", "--seed", "2"])
        return a, b

    def test_mine(self, basket_files):
        a, _ = basket_files
        text = run_cli(
            ["mine", "--data", str(a), "--min-support", "0.05", "--top", "5"]
        )
        assert "frequent itemsets" in text

    def test_compare_lits(self, basket_files):
        a, b = basket_files
        text = run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2"]
        )
        assert "delta  =" in text
        assert "delta* =" in text

    def test_compare_lits_with_bootstrap(self, basket_files):
        a, b = basket_files
        text = run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2",
             "--boot", "5", "--seed", "3"]
        )
        assert "significance =" in text

    def test_compare_dt(self, tmp_path):
        a = tmp_path / "a.npz"
        b = tmp_path / "b.npz"
        run_cli(["generate-classify", "--out", str(a), "--n", "600",
                 "--function", "1", "--seed", "1"])
        run_cli(["generate-classify", "--out", str(b), "--n", "600",
                 "--function", "2", "--seed", "2"])
        text = run_cli(
            ["compare-dt", "--data1", str(a), "--data2", str(b),
             "--max-depth", "4", "--min-leaf", "30", "--boot", "4",
             "--seed", "5"]
        )
        assert "delta =" in text
        assert "significance =" in text


class TestModelWorkflow:
    def test_mine_save_then_compare_models(self, tmp_path):
        """Mine once, persist the models, compare via delta* -- no data."""
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        run_cli(["generate-basket", "--out", str(a), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--seed", "1"])
        run_cli(["generate-basket", "--out", str(b), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--pattern-len", "6", "--seed", "2"])
        ma = tmp_path / "a.model.json"
        mb = tmp_path / "b.model.json"
        text = run_cli(["mine", "--data", str(a), "--min-support", "0.05",
                        "--max-len", "2", "--save", str(ma)])
        assert "saved model" in text
        run_cli(["mine", "--data", str(b), "--min-support", "0.05",
                 "--max-len", "2", "--save", str(mb)])
        text = run_cli(
            ["compare-models", "--model1", str(ma), "--model2", str(mb)]
        )
        assert "delta* =" in text


class TestMonitorStream:
    @pytest.fixture
    def stream_file(self, tmp_path):
        """A quiet process followed by a shifted one, saved as one stream."""
        import numpy as np

        from repro.data.io import save_transactions
        from repro.data.quest_basket import build_pattern_pool, generate_basket
        from repro.data.transactions import TransactionDataset

        rng = np.random.default_rng(17)
        pool = build_pattern_pool(
            rng, n_items=40, n_patterns=25, avg_pattern_len=3
        )
        quiet = generate_basket(
            1_600, n_items=40, avg_transaction_len=5, rng=rng, pool=pool
        )
        shifted = generate_basket(
            800, n_items=40, avg_transaction_len=5, n_patterns=25,
            avg_pattern_len=5, rng=rng,
        )
        path = tmp_path / "stream.txt"
        save_transactions(
            TransactionDataset(list(quiet) + list(shifted), 40), path
        )
        return path

    def test_monitor_stream_flags_drift(self, stream_file):
        text = run_cli(
            ["monitor-stream", "--data", str(stream_file),
             "--window", "800", "--step", "400", "--min-support", "0.05",
             "--boot", "5", "--seed", "1"]
        )
        assert "windows monitored" in text
        assert "DRIFT" in text
        assert "rows sketched incrementally" in text
        # quiet windows precede the drifted ones
        first_line = text.splitlines()[0]
        assert "[ok]" in first_line

    def test_monitor_stream_cheap_mode(self, stream_file):
        text = run_cli(
            ["monitor-stream", "--data", str(stream_file),
             "--window", "800", "--min-support", "0.05",
             "--boot", "0", "--delta-threshold", "3.0"]
        )
        assert "windows monitored" in text

    def test_monitor_stream_short_stream_warms_up_only(self, tmp_path):
        run_cli(["generate-basket", "--out", str(tmp_path / "tiny.txt"),
                 "--n", "100", "--items", "30", "--seed", "4"])
        text = run_cli(
            ["monitor-stream", "--data", str(tmp_path / "tiny.txt"),
             "--window", "500"]
        )
        assert "warm-up" in text

    def test_monitor_stream_flushes_trailing_partial_window(self, stream_file):
        # 2,400 rows with window 1,000: reference + one full window +
        # 400 trailing rows that only the flush reports.
        text = run_cli(
            ["monitor-stream", "--data", str(stream_file),
             "--window", "1000", "--min-support", "0.05",
             "--boot", "0", "--delta-threshold", "3.0"]
        )
        assert "partial final window" in text
        assert "2 windows monitored" in text

    def test_monitor_stream_tabular_kind(self, tmp_path):
        path = tmp_path / "people.npz"
        run_cli(["generate-classify", "--out", str(path), "--n", "2300",
                 "--function", "1", "--seed", "11"])
        text = run_cli(
            ["monitor-stream", "--data", str(path), "--kind", "tabular",
             "--window", "1000", "--boot", "0",
             "--delta-threshold", "0.5", "--max-depth", "4"]
        )
        assert "windows monitored" in text
        assert "partial final window" in text  # the trailing 300 rows
        assert "rows sketched incrementally" in text

    def test_monitor_stream_tabular_bootstrap(self, tmp_path):
        path = tmp_path / "people.npz"
        run_cli(["generate-classify", "--out", str(path), "--n", "2000",
                 "--function", "1", "--seed", "12"])
        text = run_cli(
            ["monitor-stream", "--data", str(path), "--kind", "tabular",
             "--window", "500", "--step", "250", "--boot", "4",
             "--seed", "3", "--max-depth", "3"]
        )
        assert "windows monitored" in text

    def test_monitor_stream_supervised_matches_plain(self, stream_file):
        base = ["monitor-stream", "--data", str(stream_file),
                "--window", "800", "--step", "400", "--min-support", "0.05",
                "--boot", "5", "--seed", "1"]
        plain = run_cli(base)
        supervised = run_cli(base + ["--retries", "1",
                                     "--on-failure", "degrade"])
        assert supervised == plain


class TestMonitorStreamCheckpoint:
    """Satellite: kill monitor-stream mid-run, rerun with the same
    --checkpoint-dir, and the concatenated output equals the
    uninterrupted run's."""

    ARGS = ["--window", "800", "--step", "400", "--min-support", "0.05",
            "--boot", "5", "--seed", "1"]

    def test_killed_run_resumes_to_identical_output(
        self, tmp_path, monkeypatch
    ):
        from repro.stream.monitor import OnlineChangeMonitor

        stream_file = tmp_path / "stream.txt"
        run_cli(["generate-basket", "--out", str(stream_file), "--n", "2400",
                 "--items", "40", "--avg-len", "5", "--patterns", "25",
                 "--pattern-len", "3", "--seed", "17"])
        base = ["monitor-stream", "--data", str(stream_file)] + self.ARGS
        uninterrupted = run_cli(base)

        ckpt = tmp_path / "ckpt"
        original_push = OnlineChangeMonitor.push
        calls = {"n": 0}

        def dying_push(self, data):
            calls["n"] += 1
            if calls["n"] > 3:
                raise KeyboardInterrupt("simulated kill")
            return original_push(self, data)

        monkeypatch.setattr(OnlineChangeMonitor, "push", dying_push)
        part1 = io.StringIO()
        with pytest.raises(KeyboardInterrupt):
            main(base + ["--checkpoint-dir", str(ckpt)], out=part1)
        monkeypatch.setattr(OnlineChangeMonitor, "push", original_push)

        part2 = run_cli(base + ["--checkpoint-dir", str(ckpt)])
        assert part1.getvalue() + part2 == uninterrupted

    def test_fresh_dir_runs_from_scratch(self, tmp_path):
        stream_file = tmp_path / "stream.txt"
        run_cli(["generate-basket", "--out", str(stream_file), "--n", "1600",
                 "--items", "40", "--avg-len", "5", "--seed", "3"])
        base = ["monitor-stream", "--data", str(stream_file)] + self.ARGS
        with_ckpt = run_cli(
            base + ["--checkpoint-dir", str(tmp_path / "fresh")]
        )
        assert with_ckpt == run_cli(base)
        assert (tmp_path / "fresh" / "CHECKPOINT.json").exists()


class TestFleet:
    @pytest.fixture
    def fleet_files(self, tmp_path):
        """Three store files: two from one process, one shifted."""
        paths = []
        for seed, plen in ((1, 4), (2, 4), (3, 8)):
            path = tmp_path / f"store{seed}.txt"
            run_cli(["generate-basket", "--out", str(path), "--n", "400",
                     "--items", "60", "--patterns", "40", "--avg-len", "6",
                     "--pattern-len", str(plen), "--seed", str(seed)])
            paths.append(str(path))
        return paths

    def test_fleet_json_report_shape(self, fleet_files):
        import json

        text = run_cli(
            ["fleet", "--data", *fleet_files, "--min-support", "0.05",
             "--max-len", "2", "--threshold", "3", "--groups", "2"]
        )
        report = json.loads(text)
        assert set(report) >= {
            "kind", "names", "matrix", "exact", "bounds", "embedding",
            "groups", "pruning",
        }
        assert report["kind"] == "lits"
        assert report["names"] == ["store1", "store2", "store3"]
        matrix = report["matrix"]
        assert len(matrix) == 3 and all(len(row) == 3 for row in matrix)
        for i in range(3):
            assert matrix[i][i] == 0.0
            for j in range(3):
                assert matrix[i][j] == matrix[j][i]
        assert len(report["embedding"]) == 3
        assert all(len(point) == 2 for point in report["embedding"])
        grouped = sorted(n for members in report["groups"].values()
                         for n in members)
        assert grouped == sorted(report["names"])
        pruning = report["pruning"]
        assert pruning["n_pairs"] == 3
        assert (pruning["n_scanned"] + pruning["n_model_only"]
                + pruning["n_pruned"]) == 3

    def test_fleet_csv_matrix(self, fleet_files):
        text = run_cli(
            ["fleet", "--data", *fleet_files, "--min-support", "0.05",
             "--max-len", "2", "--format", "csv"]
        )
        lines = text.strip().splitlines()
        assert lines[0] == "store,store1,store2,store3"
        assert len(lines) == 4
        assert all(len(line.split(",")) == 4 for line in lines)
        # exhaustive: no entry carries the pruned (bound-valued) marker
        assert "*" not in text

    def test_fleet_writes_out_file(self, fleet_files, tmp_path):
        import json

        out_path = tmp_path / "fleet.json"
        text = run_cli(
            ["fleet", "--data", *fleet_files, "--min-support", "0.05",
             "--max-len", "2", "--out", str(out_path)]
        )
        assert "3 stores, 3 pairs" in text
        report = json.loads(out_path.read_text())
        assert len(report["matrix"]) == 3

    def test_fleet_two_stores_default_report(self, fleet_files):
        """The minimum fleet the CLI accepts must survive the default k=2."""
        import json

        report = json.loads(
            run_cli(["fleet", "--data", *fleet_files[:2],
                     "--min-support", "0.05", "--max-len", "2"])
        )
        assert len(report["embedding"]) == 2
        assert all(len(point) == 2 for point in report["embedding"])

    def test_fleet_tabular_threshold_rejected_cleanly(self, tmp_path):
        paths = []
        for seed in (1, 2):
            path = tmp_path / f"t{seed}.npz"
            run_cli(["generate-classify", "--out", str(path), "--n", "300",
                     "--function", "1", "--seed", str(seed)])
            paths.append(str(path))
        out = io.StringIO()
        code = main(["fleet", "--data", *paths, "--kind", "tabular",
                     "--threshold", "5"], out=out)
        assert code == 2  # a clear message, not a traceback

    def test_fleet_tabular_kind(self, tmp_path):
        import json

        paths = []
        for seed, fn in ((1, 1), (2, 1), (3, 2)):
            path = tmp_path / f"t{seed}.npz"
            run_cli(["generate-classify", "--out", str(path), "--n", "500",
                     "--function", str(fn), "--seed", str(seed)])
            paths.append(str(path))
        text = run_cli(
            ["fleet", "--data", *paths, "--kind", "tabular",
             "--max-depth", "3", "--groups", "2"]
        )
        report = json.loads(text)
        assert report["kind"] == "partition"
        assert "bounds" not in report  # delta* is lits-only
        assert report["pruning"]["n_pruned"] == 0
        # the two F1 stores are closer to each other than to the F2 one
        m = report["matrix"]
        assert m[0][1] < m[0][2] and m[0][1] < m[1][2]


class TestObservabilityFlags:
    @pytest.fixture
    def basket_files(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        run_cli(["generate-basket", "--out", str(a), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--seed", "1"])
        run_cli(["generate-basket", "--out", str(b), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--pattern-len", "6", "--seed", "2"])
        return a, b

    def test_metrics_to_stderr(self, basket_files, capsys):
        import json

        a, b = basket_files
        run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2",
             "--boot", "4", "--metrics"]
        )
        snapshot = json.loads(capsys.readouterr().err)
        assert snapshot["counters"]["bootstrap.pooled_scans"] == 1
        assert snapshot["counters"]["bitmap.support_counts.calls"] >= 1

    def test_metrics_to_file(self, basket_files, tmp_path, capsys):
        import json

        a, b = basket_files
        out_path = tmp_path / "metrics.json"
        run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2",
             "--metrics", str(out_path)]
        )
        assert "wrote metrics snapshot" in capsys.readouterr().err
        snapshot = json.loads(out_path.read_text())
        assert snapshot["counters"]["bitmap.support_counts.calls"] >= 1

    def test_profile_prints_report_table(self, basket_files, capsys):
        a, b = basket_files
        run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2", "--profile"]
        )
        err = capsys.readouterr().err
        assert "counters" in err
        assert "bitmap.support_counts.calls" in err

    def test_monitor_stream_metrics(self, tmp_path, capsys):
        import json

        path = tmp_path / "stream.txt"
        run_cli(["generate-basket", "--out", str(path), "--n", "900",
                 "--items", "40", "--seed", "6"])
        run_cli(
            ["monitor-stream", "--data", str(path), "--window", "300",
             "--min-support", "0.05", "--boot", "0",
             "--delta-threshold", "3.0", "--metrics"]
        )
        snapshot = json.loads(capsys.readouterr().err)
        counters = snapshot["counters"]
        # the first 300-row window seeds the reference model before the
        # window manager starts sketching, so 600 of the 900 rows count
        assert counters["stream.windows.rows_sketched"] == 600
        assert counters["monitor.qualify.cheap"] >= 1
        assert "monitor.observe" in snapshot["spans"]

    def test_fleet_metrics_match_report(self, tmp_path, capsys):
        import json

        paths = []
        for seed in (1, 2, 3):
            path = tmp_path / f"s{seed}.txt"
            run_cli(["generate-basket", "--out", str(path), "--n", "300",
                     "--items", "50", "--seed", str(seed)])
            paths.append(str(path))
        text = run_cli(
            ["fleet", "--data", *paths, "--min-support", "0.05",
             "--max-len", "2", "--metrics"]
        )
        report = json.loads(text)
        # stderr carries the human summary line first, then the snapshot
        err = capsys.readouterr().err
        snapshot = json.loads(err[err.index("{"):])
        assert (
            snapshot["counters"]["fleet.pairs.scanned"]
            == report["pruning"]["n_scanned"]
            == report["metrics"]["fleet.pairs.scanned"]
        )
        assert snapshot["counters"]["fleet.store.scans"] == 3

    def test_without_flags_no_metrics_output(self, basket_files, capsys):
        a, b = basket_files
        run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2"]
        )
        assert capsys.readouterr().err == ""


class TestSketchCommands:
    @pytest.fixture
    def lits_fleet(self, tmp_path):
        """Three stores through the two-leg protocol: models travel
        first, then every site sketches the fleet-wide probe union."""
        stores = []
        for i, plen in enumerate((3, 3, 6)):
            data = tmp_path / f"s{i}.txt"
            run_cli(["generate-basket", "--out", str(data), "--n", "400",
                     "--items", "60", "--patterns", "40", "--avg-len", "6",
                     "--pattern-len", str(plen), "--seed", str(i + 1)])
            model = tmp_path / f"s{i}.model"
            sketch = tmp_path / f"s{i}.sketch"
            run_cli(["sketch", "pack", "--kind", "transactions",
                     "--data", str(data), "--min-support", "0.05",
                     "--max-len", "2", "--out", str(sketch),
                     "--model-out", str(model)])
            stores.append((data, model, sketch))
        model_args = [str(m) for _, m, _ in stores]
        for data, _, sketch in stores:
            run_cli(["sketch", "pack", "--kind", "transactions",
                     "--data", str(data), "--min-support", "0.05",
                     "--max-len", "2", "--probe-models", *model_args,
                     "--out", str(sketch)])
        return stores

    def test_compare_matches_row_level_compare_lits(
        self, tmp_path, lits_fleet
    ):
        import json
        import re

        report_path = tmp_path / "fleet.json"
        run_cli(["sketch", "compare",
                 "--in", *[str(s) for _, _, s in lits_fleet],
                 "--models", *[str(m) for _, m, _ in lits_fleet],
                 "--out", str(report_path)])
        report = json.loads(report_path.read_text())
        oracle_text = run_cli(
            ["compare-lits", "--data1", str(lits_fleet[0][0]),
             "--data2", str(lits_fleet[2][0]),
             "--min-support", "0.05", "--max-len", "2"]
        )
        oracle = float(re.search(r"delta  = ([0-9.]+)", oracle_text).group(1))
        assert report["matrix"][0][2] == pytest.approx(oracle, abs=1e-6)
        assert report["pruning"]["n_sketch_exact"] == 3
        # a lits shipment is the model payload plus the sketch payload
        assert report["payload_bytes"] == [
            len(m.read_bytes()) + len(s.read_bytes())
            for _, m, s in lits_fleet
        ]

    def test_shard_sketches_merge_byte_identical_to_whole(
        self, tmp_path, lits_fleet
    ):
        # split store 0's log into two shards (keeping the header);
        # with a shared probe collection the merged shard sketches must
        # reproduce the whole-store payload byte for byte
        lines = lits_fleet[0][0].read_text().splitlines(keepends=True)
        header, body = lines[0], lines[1:]
        shard_sketches = []
        model_args = [str(m) for _, m, _ in lits_fleet]
        for k, rows in enumerate((body[:200], body[200:])):
            shard = tmp_path / f"shard{k}.txt"
            shard.write_text(header + "".join(rows))
            out = tmp_path / f"shard{k}.sketch"
            run_cli(["sketch", "pack", "--kind", "transactions",
                     "--data", str(shard), "--min-support", "0.05",
                     "--max-len", "2", "--probe-models", *model_args,
                     "--out", str(out)])
            shard_sketches.append(out)
        merged = tmp_path / "merged.sketch"
        text = run_cli(["sketch", "merge",
                        "--in", *[str(s) for s in shard_sketches],
                        "--out", str(merged)])
        assert "merged 2 sketches" in text
        assert merged.read_bytes() == lits_fleet[0][2].read_bytes()

    def test_tabular_flow_with_shared_ref_and_qualification(self, tmp_path):
        import json

        sketches = []
        ref = tmp_path / "ref.model"
        for i, fn in enumerate((1, 1, 3)):
            data = tmp_path / f"p{i}.npz"
            run_cli(["generate-classify", "--out", str(data), "--n", "500",
                     "--function", str(fn), "--seed", str(20 + i)])
            sketch = tmp_path / f"p{i}.sketch"
            argv = ["sketch", "pack", "--kind", "tabular", "--data",
                    str(data), "--out", str(sketch)]
            argv += (["--model-out", str(ref)] if i == 0
                     else ["--ref", str(ref)])
            run_cli(argv)
            sketches.append(sketch)
        report_path = tmp_path / "tab.json"
        run_cli(["sketch", "compare", "--in", *[str(s) for s in sketches],
                 "--boot", "50", "--seed", "7", "--out", str(report_path)])
        report = json.loads(report_path.read_text())
        assert report["kind"] == "partition"
        pairs = {tuple(q["pair"]): q["p_value"]
                 for q in report["qualification"]}
        assert len(pairs) == 3
        assert all(0.0 < p <= 1.0 for p in pairs.values())

    def test_inspect_names_kind_and_sections(self, lits_fleet):
        import json

        text = run_cli(["sketch", "inspect", "--in",
                        str(lits_fleet[0][2]), str(lits_fleet[0][1])])
        infos = json.loads("[" + text.replace("}\n{", "},\n{") + "]")
        assert [i["kind"] for i in infos] == ["support-sketch", "lits-model"]
        assert [s["name"] for s in infos[0]["sections"]] == [
            "meta", "sizes", "items", "counts"
        ]

    def test_corrupted_payload_is_a_typed_error(self, lits_fleet):
        from repro.errors import WireFormatError

        corrupt = bytearray(lits_fleet[0][2].read_bytes())
        corrupt[-5] ^= 0x10
        lits_fleet[0][2].write_bytes(bytes(corrupt))
        with pytest.raises(WireFormatError, match="checksum"):
            main(["sketch", "inspect", "--in", str(lits_fleet[0][2])],
                 out=io.StringIO())

    def test_merge_refuses_model_payloads(self, lits_fleet, capsys):
        code = main(["sketch", "merge",
                     "--in", str(lits_fleet[0][1]), str(lits_fleet[1][1]),
                     "--out", "/dev/null"], out=io.StringIO())
        assert code == 2
        assert "merge" in capsys.readouterr().err

    def test_threshold_rejected_for_partition_fleet(self, tmp_path, capsys):
        data = tmp_path / "p.npz"
        run_cli(["generate-classify", "--out", str(data), "--n", "400",
                 "--seed", "3"])
        sketch = tmp_path / "p.sketch"
        run_cli(["sketch", "pack", "--kind", "tabular", "--data", str(data),
                 "--out", str(sketch)])
        code = main(["sketch", "compare", "--in", str(sketch), str(sketch),
                     "--names", "x", "y", "--threshold", "0.5",
                     "--out", "/dev/null"], out=io.StringIO())
        assert code == 2
        assert "threshold" in capsys.readouterr().err


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_missing_required_arg_exits(self):
        with pytest.raises(SystemExit):
            main(["mine"])
