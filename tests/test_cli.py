"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import main


def run_cli(argv) -> str:
    out = io.StringIO()
    code = main(argv, out=out)
    assert code == 0
    return out.getvalue()


class TestGenerate:
    def test_generate_basket(self, tmp_path):
        path = tmp_path / "txns.txt"
        text = run_cli(
            ["generate-basket", "--out", str(path), "--n", "200",
             "--items", "50", "--seed", "1"]
        )
        assert "200 transactions" in text
        assert path.exists()

    def test_generate_classify(self, tmp_path):
        path = tmp_path / "people.npz"
        text = run_cli(
            ["generate-classify", "--out", str(path), "--n", "300",
             "--function", "2", "--seed", "1"]
        )
        assert "300 tuples" in text
        assert path.exists()


class TestMineAndCompare:
    @pytest.fixture
    def basket_files(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        run_cli(["generate-basket", "--out", str(a), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--seed", "1"])
        run_cli(["generate-basket", "--out", str(b), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--pattern-len", "6", "--seed", "2"])
        return a, b

    def test_mine(self, basket_files):
        a, _ = basket_files
        text = run_cli(
            ["mine", "--data", str(a), "--min-support", "0.05", "--top", "5"]
        )
        assert "frequent itemsets" in text

    def test_compare_lits(self, basket_files):
        a, b = basket_files
        text = run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2"]
        )
        assert "delta  =" in text
        assert "delta* =" in text

    def test_compare_lits_with_bootstrap(self, basket_files):
        a, b = basket_files
        text = run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2",
             "--boot", "5", "--seed", "3"]
        )
        assert "significance =" in text

    def test_compare_dt(self, tmp_path):
        a = tmp_path / "a.npz"
        b = tmp_path / "b.npz"
        run_cli(["generate-classify", "--out", str(a), "--n", "600",
                 "--function", "1", "--seed", "1"])
        run_cli(["generate-classify", "--out", str(b), "--n", "600",
                 "--function", "2", "--seed", "2"])
        text = run_cli(
            ["compare-dt", "--data1", str(a), "--data2", str(b),
             "--max-depth", "4", "--min-leaf", "30", "--boot", "4",
             "--seed", "5"]
        )
        assert "delta =" in text
        assert "significance =" in text


class TestModelWorkflow:
    def test_mine_save_then_compare_models(self, tmp_path):
        """Mine once, persist the models, compare via delta* -- no data."""
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        run_cli(["generate-basket", "--out", str(a), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--seed", "1"])
        run_cli(["generate-basket", "--out", str(b), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--pattern-len", "6", "--seed", "2"])
        ma = tmp_path / "a.model.json"
        mb = tmp_path / "b.model.json"
        text = run_cli(["mine", "--data", str(a), "--min-support", "0.05",
                        "--max-len", "2", "--save", str(ma)])
        assert "saved model" in text
        run_cli(["mine", "--data", str(b), "--min-support", "0.05",
                 "--max-len", "2", "--save", str(mb)])
        text = run_cli(
            ["compare-models", "--model1", str(ma), "--model2", str(mb)]
        )
        assert "delta* =" in text


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_missing_required_arg_exits(self):
        with pytest.raises(SystemExit):
            main(["mine"])
