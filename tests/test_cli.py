"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import main


def run_cli(argv) -> str:
    out = io.StringIO()
    code = main(argv, out=out)
    assert code == 0
    return out.getvalue()


class TestGenerate:
    def test_generate_basket(self, tmp_path):
        path = tmp_path / "txns.txt"
        text = run_cli(
            ["generate-basket", "--out", str(path), "--n", "200",
             "--items", "50", "--seed", "1"]
        )
        assert "200 transactions" in text
        assert path.exists()

    def test_generate_classify(self, tmp_path):
        path = tmp_path / "people.npz"
        text = run_cli(
            ["generate-classify", "--out", str(path), "--n", "300",
             "--function", "2", "--seed", "1"]
        )
        assert "300 tuples" in text
        assert path.exists()


class TestMineAndCompare:
    @pytest.fixture
    def basket_files(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        run_cli(["generate-basket", "--out", str(a), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--seed", "1"])
        run_cli(["generate-basket", "--out", str(b), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--pattern-len", "6", "--seed", "2"])
        return a, b

    def test_mine(self, basket_files):
        a, _ = basket_files
        text = run_cli(
            ["mine", "--data", str(a), "--min-support", "0.05", "--top", "5"]
        )
        assert "frequent itemsets" in text

    def test_compare_lits(self, basket_files):
        a, b = basket_files
        text = run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2"]
        )
        assert "delta  =" in text
        assert "delta* =" in text

    def test_compare_lits_with_bootstrap(self, basket_files):
        a, b = basket_files
        text = run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2",
             "--boot", "5", "--seed", "3"]
        )
        assert "significance =" in text

    def test_compare_dt(self, tmp_path):
        a = tmp_path / "a.npz"
        b = tmp_path / "b.npz"
        run_cli(["generate-classify", "--out", str(a), "--n", "600",
                 "--function", "1", "--seed", "1"])
        run_cli(["generate-classify", "--out", str(b), "--n", "600",
                 "--function", "2", "--seed", "2"])
        text = run_cli(
            ["compare-dt", "--data1", str(a), "--data2", str(b),
             "--max-depth", "4", "--min-leaf", "30", "--boot", "4",
             "--seed", "5"]
        )
        assert "delta =" in text
        assert "significance =" in text


class TestModelWorkflow:
    def test_mine_save_then_compare_models(self, tmp_path):
        """Mine once, persist the models, compare via delta* -- no data."""
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        run_cli(["generate-basket", "--out", str(a), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--seed", "1"])
        run_cli(["generate-basket", "--out", str(b), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--pattern-len", "6", "--seed", "2"])
        ma = tmp_path / "a.model.json"
        mb = tmp_path / "b.model.json"
        text = run_cli(["mine", "--data", str(a), "--min-support", "0.05",
                        "--max-len", "2", "--save", str(ma)])
        assert "saved model" in text
        run_cli(["mine", "--data", str(b), "--min-support", "0.05",
                 "--max-len", "2", "--save", str(mb)])
        text = run_cli(
            ["compare-models", "--model1", str(ma), "--model2", str(mb)]
        )
        assert "delta* =" in text


class TestMonitorStream:
    @pytest.fixture
    def stream_file(self, tmp_path):
        """A quiet process followed by a shifted one, saved as one stream."""
        import numpy as np

        from repro.data.io import save_transactions
        from repro.data.quest_basket import build_pattern_pool, generate_basket
        from repro.data.transactions import TransactionDataset

        rng = np.random.default_rng(17)
        pool = build_pattern_pool(
            rng, n_items=40, n_patterns=25, avg_pattern_len=3
        )
        quiet = generate_basket(
            1_600, n_items=40, avg_transaction_len=5, rng=rng, pool=pool
        )
        shifted = generate_basket(
            800, n_items=40, avg_transaction_len=5, n_patterns=25,
            avg_pattern_len=5, rng=rng,
        )
        path = tmp_path / "stream.txt"
        save_transactions(
            TransactionDataset(list(quiet) + list(shifted), 40), path
        )
        return path

    def test_monitor_stream_flags_drift(self, stream_file):
        text = run_cli(
            ["monitor-stream", "--data", str(stream_file),
             "--window", "800", "--step", "400", "--min-support", "0.05",
             "--boot", "5", "--seed", "1"]
        )
        assert "windows monitored" in text
        assert "DRIFT" in text
        assert "rows sketched incrementally" in text
        # quiet windows precede the drifted ones
        first_line = text.splitlines()[0]
        assert "[ok]" in first_line

    def test_monitor_stream_cheap_mode(self, stream_file):
        text = run_cli(
            ["monitor-stream", "--data", str(stream_file),
             "--window", "800", "--min-support", "0.05",
             "--boot", "0", "--delta-threshold", "3.0"]
        )
        assert "windows monitored" in text

    def test_monitor_stream_short_stream_warms_up_only(self, tmp_path):
        run_cli(["generate-basket", "--out", str(tmp_path / "tiny.txt"),
                 "--n", "100", "--items", "30", "--seed", "4"])
        text = run_cli(
            ["monitor-stream", "--data", str(tmp_path / "tiny.txt"),
             "--window", "500"]
        )
        assert "warm-up" in text

    def test_monitor_stream_flushes_trailing_partial_window(self, stream_file):
        # 2,400 rows with window 1,000: reference + one full window +
        # 400 trailing rows that only the flush reports.
        text = run_cli(
            ["monitor-stream", "--data", str(stream_file),
             "--window", "1000", "--min-support", "0.05",
             "--boot", "0", "--delta-threshold", "3.0"]
        )
        assert "partial final window" in text
        assert "2 windows monitored" in text

    def test_monitor_stream_tabular_kind(self, tmp_path):
        path = tmp_path / "people.npz"
        run_cli(["generate-classify", "--out", str(path), "--n", "2300",
                 "--function", "1", "--seed", "11"])
        text = run_cli(
            ["monitor-stream", "--data", str(path), "--kind", "tabular",
             "--window", "1000", "--boot", "0",
             "--delta-threshold", "0.5", "--max-depth", "4"]
        )
        assert "windows monitored" in text
        assert "partial final window" in text  # the trailing 300 rows
        assert "rows sketched incrementally" in text

    def test_monitor_stream_tabular_bootstrap(self, tmp_path):
        path = tmp_path / "people.npz"
        run_cli(["generate-classify", "--out", str(path), "--n", "2000",
                 "--function", "1", "--seed", "12"])
        text = run_cli(
            ["monitor-stream", "--data", str(path), "--kind", "tabular",
             "--window", "500", "--step", "250", "--boot", "4",
             "--seed", "3", "--max-depth", "3"]
        )
        assert "windows monitored" in text


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_missing_required_arg_exits(self):
        with pytest.raises(SystemExit):
            main(["mine"])
