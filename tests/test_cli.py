"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import main


def run_cli(argv) -> str:
    out = io.StringIO()
    code = main(argv, out=out)
    assert code == 0
    return out.getvalue()


class TestGenerate:
    def test_generate_basket(self, tmp_path):
        path = tmp_path / "txns.txt"
        text = run_cli(
            ["generate-basket", "--out", str(path), "--n", "200",
             "--items", "50", "--seed", "1"]
        )
        assert "200 transactions" in text
        assert path.exists()

    def test_generate_classify(self, tmp_path):
        path = tmp_path / "people.npz"
        text = run_cli(
            ["generate-classify", "--out", str(path), "--n", "300",
             "--function", "2", "--seed", "1"]
        )
        assert "300 tuples" in text
        assert path.exists()


class TestMineAndCompare:
    @pytest.fixture
    def basket_files(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        run_cli(["generate-basket", "--out", str(a), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--seed", "1"])
        run_cli(["generate-basket", "--out", str(b), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--pattern-len", "6", "--seed", "2"])
        return a, b

    def test_mine(self, basket_files):
        a, _ = basket_files
        text = run_cli(
            ["mine", "--data", str(a), "--min-support", "0.05", "--top", "5"]
        )
        assert "frequent itemsets" in text

    def test_compare_lits(self, basket_files):
        a, b = basket_files
        text = run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2"]
        )
        assert "delta  =" in text
        assert "delta* =" in text

    def test_compare_lits_with_bootstrap(self, basket_files):
        a, b = basket_files
        text = run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2",
             "--boot", "5", "--seed", "3"]
        )
        assert "significance =" in text

    def test_compare_dt(self, tmp_path):
        a = tmp_path / "a.npz"
        b = tmp_path / "b.npz"
        run_cli(["generate-classify", "--out", str(a), "--n", "600",
                 "--function", "1", "--seed", "1"])
        run_cli(["generate-classify", "--out", str(b), "--n", "600",
                 "--function", "2", "--seed", "2"])
        text = run_cli(
            ["compare-dt", "--data1", str(a), "--data2", str(b),
             "--max-depth", "4", "--min-leaf", "30", "--boot", "4",
             "--seed", "5"]
        )
        assert "delta =" in text
        assert "significance =" in text


class TestModelWorkflow:
    def test_mine_save_then_compare_models(self, tmp_path):
        """Mine once, persist the models, compare via delta* -- no data."""
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        run_cli(["generate-basket", "--out", str(a), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--seed", "1"])
        run_cli(["generate-basket", "--out", str(b), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--pattern-len", "6", "--seed", "2"])
        ma = tmp_path / "a.model.json"
        mb = tmp_path / "b.model.json"
        text = run_cli(["mine", "--data", str(a), "--min-support", "0.05",
                        "--max-len", "2", "--save", str(ma)])
        assert "saved model" in text
        run_cli(["mine", "--data", str(b), "--min-support", "0.05",
                 "--max-len", "2", "--save", str(mb)])
        text = run_cli(
            ["compare-models", "--model1", str(ma), "--model2", str(mb)]
        )
        assert "delta* =" in text


class TestMonitorStream:
    @pytest.fixture
    def stream_file(self, tmp_path):
        """A quiet process followed by a shifted one, saved as one stream."""
        import numpy as np

        from repro.data.io import save_transactions
        from repro.data.quest_basket import build_pattern_pool, generate_basket
        from repro.data.transactions import TransactionDataset

        rng = np.random.default_rng(17)
        pool = build_pattern_pool(
            rng, n_items=40, n_patterns=25, avg_pattern_len=3
        )
        quiet = generate_basket(
            1_600, n_items=40, avg_transaction_len=5, rng=rng, pool=pool
        )
        shifted = generate_basket(
            800, n_items=40, avg_transaction_len=5, n_patterns=25,
            avg_pattern_len=5, rng=rng,
        )
        path = tmp_path / "stream.txt"
        save_transactions(
            TransactionDataset(list(quiet) + list(shifted), 40), path
        )
        return path

    def test_monitor_stream_flags_drift(self, stream_file):
        text = run_cli(
            ["monitor-stream", "--data", str(stream_file),
             "--window", "800", "--step", "400", "--min-support", "0.05",
             "--boot", "5", "--seed", "1"]
        )
        assert "windows monitored" in text
        assert "DRIFT" in text
        assert "rows sketched incrementally" in text
        # quiet windows precede the drifted ones
        first_line = text.splitlines()[0]
        assert "[ok]" in first_line

    def test_monitor_stream_cheap_mode(self, stream_file):
        text = run_cli(
            ["monitor-stream", "--data", str(stream_file),
             "--window", "800", "--min-support", "0.05",
             "--boot", "0", "--delta-threshold", "3.0"]
        )
        assert "windows monitored" in text

    def test_monitor_stream_short_stream_warms_up_only(self, tmp_path):
        run_cli(["generate-basket", "--out", str(tmp_path / "tiny.txt"),
                 "--n", "100", "--items", "30", "--seed", "4"])
        text = run_cli(
            ["monitor-stream", "--data", str(tmp_path / "tiny.txt"),
             "--window", "500"]
        )
        assert "warm-up" in text

    def test_monitor_stream_flushes_trailing_partial_window(self, stream_file):
        # 2,400 rows with window 1,000: reference + one full window +
        # 400 trailing rows that only the flush reports.
        text = run_cli(
            ["monitor-stream", "--data", str(stream_file),
             "--window", "1000", "--min-support", "0.05",
             "--boot", "0", "--delta-threshold", "3.0"]
        )
        assert "partial final window" in text
        assert "2 windows monitored" in text

    def test_monitor_stream_tabular_kind(self, tmp_path):
        path = tmp_path / "people.npz"
        run_cli(["generate-classify", "--out", str(path), "--n", "2300",
                 "--function", "1", "--seed", "11"])
        text = run_cli(
            ["monitor-stream", "--data", str(path), "--kind", "tabular",
             "--window", "1000", "--boot", "0",
             "--delta-threshold", "0.5", "--max-depth", "4"]
        )
        assert "windows monitored" in text
        assert "partial final window" in text  # the trailing 300 rows
        assert "rows sketched incrementally" in text

    def test_monitor_stream_tabular_bootstrap(self, tmp_path):
        path = tmp_path / "people.npz"
        run_cli(["generate-classify", "--out", str(path), "--n", "2000",
                 "--function", "1", "--seed", "12"])
        text = run_cli(
            ["monitor-stream", "--data", str(path), "--kind", "tabular",
             "--window", "500", "--step", "250", "--boot", "4",
             "--seed", "3", "--max-depth", "3"]
        )
        assert "windows monitored" in text


class TestFleet:
    @pytest.fixture
    def fleet_files(self, tmp_path):
        """Three store files: two from one process, one shifted."""
        paths = []
        for seed, plen in ((1, 4), (2, 4), (3, 8)):
            path = tmp_path / f"store{seed}.txt"
            run_cli(["generate-basket", "--out", str(path), "--n", "400",
                     "--items", "60", "--patterns", "40", "--avg-len", "6",
                     "--pattern-len", str(plen), "--seed", str(seed)])
            paths.append(str(path))
        return paths

    def test_fleet_json_report_shape(self, fleet_files):
        import json

        text = run_cli(
            ["fleet", "--data", *fleet_files, "--min-support", "0.05",
             "--max-len", "2", "--threshold", "3", "--groups", "2"]
        )
        report = json.loads(text)
        assert set(report) >= {
            "kind", "names", "matrix", "exact", "bounds", "embedding",
            "groups", "pruning",
        }
        assert report["kind"] == "lits"
        assert report["names"] == ["store1", "store2", "store3"]
        matrix = report["matrix"]
        assert len(matrix) == 3 and all(len(row) == 3 for row in matrix)
        for i in range(3):
            assert matrix[i][i] == 0.0
            for j in range(3):
                assert matrix[i][j] == matrix[j][i]
        assert len(report["embedding"]) == 3
        assert all(len(point) == 2 for point in report["embedding"])
        grouped = sorted(n for members in report["groups"].values()
                         for n in members)
        assert grouped == sorted(report["names"])
        pruning = report["pruning"]
        assert pruning["n_pairs"] == 3
        assert (pruning["n_scanned"] + pruning["n_model_only"]
                + pruning["n_pruned"]) == 3

    def test_fleet_csv_matrix(self, fleet_files):
        text = run_cli(
            ["fleet", "--data", *fleet_files, "--min-support", "0.05",
             "--max-len", "2", "--format", "csv"]
        )
        lines = text.strip().splitlines()
        assert lines[0] == "store,store1,store2,store3"
        assert len(lines) == 4
        assert all(len(line.split(",")) == 4 for line in lines)
        # exhaustive: no entry carries the pruned (bound-valued) marker
        assert "*" not in text

    def test_fleet_writes_out_file(self, fleet_files, tmp_path):
        import json

        out_path = tmp_path / "fleet.json"
        text = run_cli(
            ["fleet", "--data", *fleet_files, "--min-support", "0.05",
             "--max-len", "2", "--out", str(out_path)]
        )
        assert "3 stores, 3 pairs" in text
        report = json.loads(out_path.read_text())
        assert len(report["matrix"]) == 3

    def test_fleet_two_stores_default_report(self, fleet_files):
        """The minimum fleet the CLI accepts must survive the default k=2."""
        import json

        report = json.loads(
            run_cli(["fleet", "--data", *fleet_files[:2],
                     "--min-support", "0.05", "--max-len", "2"])
        )
        assert len(report["embedding"]) == 2
        assert all(len(point) == 2 for point in report["embedding"])

    def test_fleet_tabular_threshold_rejected_cleanly(self, tmp_path):
        paths = []
        for seed in (1, 2):
            path = tmp_path / f"t{seed}.npz"
            run_cli(["generate-classify", "--out", str(path), "--n", "300",
                     "--function", "1", "--seed", str(seed)])
            paths.append(str(path))
        out = io.StringIO()
        code = main(["fleet", "--data", *paths, "--kind", "tabular",
                     "--threshold", "5"], out=out)
        assert code == 2  # a clear message, not a traceback

    def test_fleet_tabular_kind(self, tmp_path):
        import json

        paths = []
        for seed, fn in ((1, 1), (2, 1), (3, 2)):
            path = tmp_path / f"t{seed}.npz"
            run_cli(["generate-classify", "--out", str(path), "--n", "500",
                     "--function", str(fn), "--seed", str(seed)])
            paths.append(str(path))
        text = run_cli(
            ["fleet", "--data", *paths, "--kind", "tabular",
             "--max-depth", "3", "--groups", "2"]
        )
        report = json.loads(text)
        assert report["kind"] == "partition"
        assert "bounds" not in report  # delta* is lits-only
        assert report["pruning"]["n_pruned"] == 0
        # the two F1 stores are closer to each other than to the F2 one
        m = report["matrix"]
        assert m[0][1] < m[0][2] and m[0][1] < m[1][2]


class TestObservabilityFlags:
    @pytest.fixture
    def basket_files(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        run_cli(["generate-basket", "--out", str(a), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--seed", "1"])
        run_cli(["generate-basket", "--out", str(b), "--n", "400",
                 "--items", "60", "--patterns", "40", "--avg-len", "6",
                 "--pattern-len", "6", "--seed", "2"])
        return a, b

    def test_metrics_to_stderr(self, basket_files, capsys):
        import json

        a, b = basket_files
        run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2",
             "--boot", "4", "--metrics"]
        )
        snapshot = json.loads(capsys.readouterr().err)
        assert snapshot["counters"]["bootstrap.pooled_scans"] == 1
        assert snapshot["counters"]["bitmap.support_counts.calls"] >= 1

    def test_metrics_to_file(self, basket_files, tmp_path, capsys):
        import json

        a, b = basket_files
        out_path = tmp_path / "metrics.json"
        run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2",
             "--metrics", str(out_path)]
        )
        assert "wrote metrics snapshot" in capsys.readouterr().err
        snapshot = json.loads(out_path.read_text())
        assert snapshot["counters"]["bitmap.support_counts.calls"] >= 1

    def test_profile_prints_report_table(self, basket_files, capsys):
        a, b = basket_files
        run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2", "--profile"]
        )
        err = capsys.readouterr().err
        assert "counters" in err
        assert "bitmap.support_counts.calls" in err

    def test_monitor_stream_metrics(self, tmp_path, capsys):
        import json

        path = tmp_path / "stream.txt"
        run_cli(["generate-basket", "--out", str(path), "--n", "900",
                 "--items", "40", "--seed", "6"])
        run_cli(
            ["monitor-stream", "--data", str(path), "--window", "300",
             "--min-support", "0.05", "--boot", "0",
             "--delta-threshold", "3.0", "--metrics"]
        )
        snapshot = json.loads(capsys.readouterr().err)
        counters = snapshot["counters"]
        # the first 300-row window seeds the reference model before the
        # window manager starts sketching, so 600 of the 900 rows count
        assert counters["stream.windows.rows_sketched"] == 600
        assert counters["monitor.qualify.cheap"] >= 1
        assert "monitor.observe" in snapshot["spans"]

    def test_fleet_metrics_match_report(self, tmp_path, capsys):
        import json

        paths = []
        for seed in (1, 2, 3):
            path = tmp_path / f"s{seed}.txt"
            run_cli(["generate-basket", "--out", str(path), "--n", "300",
                     "--items", "50", "--seed", str(seed)])
            paths.append(str(path))
        text = run_cli(
            ["fleet", "--data", *paths, "--min-support", "0.05",
             "--max-len", "2", "--metrics"]
        )
        report = json.loads(text)
        # stderr carries the human summary line first, then the snapshot
        err = capsys.readouterr().err
        snapshot = json.loads(err[err.index("{"):])
        assert (
            snapshot["counters"]["fleet.pairs.scanned"]
            == report["pruning"]["n_scanned"]
            == report["metrics"]["fleet.pairs.scanned"]
        )
        assert snapshot["counters"]["fleet.store.scans"] == 3

    def test_without_flags_no_metrics_output(self, basket_files, capsys):
        a, b = basket_files
        run_cli(
            ["compare-lits", "--data1", str(a), "--data2", str(b),
             "--min-support", "0.05", "--max-len", "2"]
        )
        assert capsys.readouterr().err == ""


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_missing_required_arg_exits(self):
        with pytest.raises(SystemExit):
            main(["mine"])
