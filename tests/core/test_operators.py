"""Tests for the structural and rank operators (Section 5)."""

from __future__ import annotations

import pytest

from repro.core.lits import LitsModel
from repro.core.model import LitsStructure
from repro.core.operators import (
    bottom_n,
    itemsets_over,
    min_region,
    rank,
    region_set_union,
    structural_difference,
    structural_intersection,
    structural_union,
    top,
    top_n,
)
from repro.core.region import ItemsetRegion


def lits(*itemsets) -> LitsStructure:
    return LitsStructure([frozenset(s) for s in itemsets])


class TestStructuralOperators:
    def test_union_is_gcr(self):
        u = structural_union(lits({0}), lits({1}))
        assert {r.items for r in u.regions} == {frozenset({0}), frozenset({1})}

    def test_intersection(self):
        common = structural_intersection(lits({0}, {1}), lits({1}, {2}))
        assert {r.items for r in common} == {frozenset({1})}

    def test_difference(self):
        diff = structural_difference(lits({0}, {1}), lits({1}, {2}))
        assert {r.items for r in diff} == {frozenset({0}), frozenset({2})}

    def test_difference_of_identical_is_empty(self):
        assert structural_difference(lits({0}), lits({0})) == ()

    def test_region_set_union_dedupes(self):
        a = [ItemsetRegion({0}), ItemsetRegion({1})]
        b = [ItemsetRegion({1}), ItemsetRegion({2})]
        u = region_set_union(a, b)
        assert {r.items for r in u} == {
            frozenset({0}), frozenset({1}), frozenset({2}),
        }

    def test_itemsets_over_department(self):
        """The paper's P(I1) device: itemsets over one department's items."""
        regions = [ItemsetRegion({0}), ItemsetRegion({0, 5}), ItemsetRegion({5})]
        dept = itemsets_over(regions, items={0, 1, 2})
        assert {r.items for r in dept} == {frozenset({0})}


class TestRankOperator:
    @pytest.fixture
    def ranked(self, basket_pair):
        d1, d2 = basket_pair
        m1 = LitsModel.mine(d1, 0.05)
        m2 = LitsModel.mine(d2, 0.05)
        union = structural_union(m1.structure, m2.structure)
        return rank(union.regions, d1, d2), d1, d2

    def test_descending_order(self, ranked):
        rr, _, _ = ranked
        scores = [r.score for r in rr]
        assert scores == sorted(scores, reverse=True)

    def test_scores_match_selectivity_difference(self, ranked):
        rr, d1, d2 = ranked
        for r in rr[:5]:
            expected = abs(
                r.region.selectivity(d1) - r.region.selectivity(d2)
            )
            assert r.score == pytest.approx(expected, abs=1e-6)

    def test_selectors(self, ranked):
        rr, _, _ = ranked
        assert top(rr) is rr[0]
        assert top_n(rr, 3) == rr[:3]
        assert min_region(rr) is rr[-1]
        assert bottom_n(rr, 2) == rr[-2:]

    def test_describe_is_printable(self, ranked):
        rr, _, _ = ranked
        text = rr[0].describe()
        assert "score=" in text


class TestRankOnDtRegions:
    def test_rank_partition_regions(self, classify_pair):
        from repro.core.dtree_model import DtModel
        from repro.mining.tree.builder import TreeParams

        d1, d2 = classify_pair
        m1 = DtModel.fit(d1, TreeParams(max_depth=3, min_leaf=50))
        m2 = DtModel.fit(d2, TreeParams(max_depth=3, min_leaf=50))
        union = structural_union(m1.structure, m2.structure)
        ranked = rank(union.regions, d1, d2)
        assert len(ranked) == len(union.regions)
        assert ranked[0].score >= ranked[-1].score
        # The most changed region should show a real selectivity gap.
        assert ranked[0].score > 0.0
