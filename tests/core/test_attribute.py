"""Unit tests for attributes and attribute spaces."""

from __future__ import annotations

import pytest

from repro.core.attribute import (
    Attribute,
    AttributeSpace,
    categorical,
    numeric,
)
from repro.errors import InvalidParameterError, SchemaError


class TestAttribute:
    def test_numeric_shorthand(self):
        a = numeric("age", 0, 100)
        assert a.is_numeric
        assert not a.is_categorical
        assert (a.low, a.high) == (0, 100)

    def test_categorical_shorthand(self):
        a = categorical("elevel", range(5))
        assert a.is_categorical
        assert a.values == (0, 1, 2, 3, 4)

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            Attribute("")

    def test_inverted_domain_rejected(self):
        with pytest.raises(InvalidParameterError):
            numeric("x", 10, 5)

    def test_empty_categorical_rejected(self):
        with pytest.raises(InvalidParameterError):
            categorical("x", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(InvalidParameterError):
            categorical("x", (1, 1, 2))


class TestAttributeSpace:
    def test_lookup(self):
        space = AttributeSpace((numeric("a"), categorical("b", (1, 2))))
        assert space.attribute("a").name == "a"
        assert space.index_of("b") == 1
        assert space.names == ("a", "b")
        assert space.n_attributes == 2

    def test_unknown_attribute_raises(self):
        space = AttributeSpace((numeric("a"),))
        with pytest.raises(SchemaError):
            space.attribute("ghost")
        with pytest.raises(SchemaError):
            space.index_of("ghost")

    def test_duplicate_names_rejected(self):
        with pytest.raises(InvalidParameterError):
            AttributeSpace((numeric("a"), numeric("a")))

    def test_class_labels(self):
        space = AttributeSpace((numeric("a"),), class_labels=(0, 1))
        assert space.n_classes == 2

    def test_compatibility(self):
        s1 = AttributeSpace((numeric("a", 0, 1),), (0, 1))
        s2 = AttributeSpace((numeric("a", 0, 1),), (0, 1))
        s3 = AttributeSpace((numeric("a", 0, 2),), (0, 1))
        assert s1.compatible_with(s2)
        assert not s1.compatible_with(s3)
