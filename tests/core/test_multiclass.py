"""Multi-class (k = 3) coverage: the paper's "k regions per leaf".

Section 2.1: "each leaf node of a decision tree for k classes is
associated with k regions". The two-class experiments never exercise
the k > 2 code paths (one-vs-rest categorical splits, k-way region
cross products), so this module does.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attribute import AttributeSpace, categorical, numeric
from repro.core.deviation import deviation
from repro.core.dtree_model import DtModel
from repro.core.focus import box_focus, focussed_deviation
from repro.core.monitoring import (
    misclassification_error,
    misclassification_error_via_focus,
)
from repro.data.tabular import TabularDataset
from repro.mining.tree.builder import TreeParams, build_tree
from repro.mining.tree.splits import best_categorical_split

SPACE = AttributeSpace(
    attributes=(numeric("x", 0, 90), categorical("colour", (0, 1, 2, 3))),
    class_labels=(0, 1, 2),
)


def three_class_dataset(n: int, seed: int, noise: float = 0.05) -> TabularDataset:
    """Class = band of x (three 30-wide bands), with a little noise."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 90, n)
    colour = rng.integers(0, 4, n).astype(np.float64)
    y = (x // 30).astype(np.int64)
    flip = rng.random(n) < noise
    y = np.where(flip, (y + 1) % 3, y)
    return TabularDataset(SPACE, np.column_stack([x, colour]), y)


def colour_driven_dataset(n: int, seed: int) -> TabularDataset:
    """Class determined by the categorical attribute (one value per class)."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 90, n)
    colour = rng.integers(0, 4, n).astype(np.float64)
    y = np.minimum(colour.astype(np.int64), 2)
    return TabularDataset(SPACE, np.column_stack([x, colour]), y)


class TestMultiClassSplits:
    def test_one_vs_rest_categorical_split(self):
        d = colour_driven_dataset(900, seed=1)
        split = best_categorical_split(
            SPACE.attribute("colour"), d.column("colour"),
            d.y, n_classes=3, min_leaf=10,
        )
        assert split is not None
        assert len(split.left_values) == 1  # one value vs the rest

    def test_tree_learns_three_bands(self):
        d = three_class_dataset(3_000, seed=2, noise=0.0)
        tree = build_tree(d, TreeParams(max_depth=4, min_leaf=20))
        assert tree.n_leaves == 3
        assert (tree.predict(d) == d.y).all()

    def test_tree_learns_colour_concept(self):
        d = colour_driven_dataset(2_000, seed=3)
        tree = build_tree(d, TreeParams(max_depth=5, min_leaf=20))
        error = float(np.mean(tree.predict(d) != d.y))
        assert error < 0.02


class TestMultiClassDeviation:
    @pytest.fixture(scope="class")
    def fitted(self):
        d1 = three_class_dataset(2_000, seed=4)
        d2 = three_class_dataset(2_000, seed=5)
        d3 = colour_driven_dataset(2_000, seed=6)
        params = TreeParams(max_depth=4, min_leaf=25)
        return (
            DtModel.fit(d1, params), DtModel.fit(d2, params),
            DtModel.fit(d3, params), d1, d2, d3,
        )

    def test_regions_are_three_per_cell(self, fitted):
        m1, _, _, d1, _, _ = fitted
        assert len(m1.structure.regions) == 3 * len(m1.structure.cells)

    def test_counts_partition_all_rows(self, fitted):
        m1, _, _, d1, _, _ = fitted
        assert m1.structure.counts(d1).sum() == len(d1)

    def test_same_process_below_cross_process(self, fitted):
        m1, m2, m3, d1, d2, d3 = fitted
        same = deviation(m1, m2, d1, d2).value
        cross = deviation(m1, m3, d1, d3).value
        assert same < cross

    def test_class_focus_decomposes_three_ways(self, fitted):
        m1, _, m3, d1, _, d3 = fitted
        whole = deviation(m1, m3, d1, d3).value
        per_class = [
            focussed_deviation(m1, m3, d1, d3, box_focus(class_label=c)).value
            for c in (0, 1, 2)
        ]
        assert sum(per_class) == pytest.approx(whole)

    def test_theorem_5_2_holds_with_three_classes(self, fitted):
        m1, _, _, _, _, d3 = fitted
        assert misclassification_error_via_focus(m1, d3) == pytest.approx(
            misclassification_error(m1, d3), abs=1e-12
        )

    def test_bounded_by_two(self, fitted):
        """f_a/g_sum over a partition x classes stays <= 2 for any k."""
        m1, _, m3, d1, _, d3 = fitted
        assert deviation(m1, m3, d1, d3).value <= 2.0 + 1e-9
