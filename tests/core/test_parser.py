"""Tests for the declarative predicate parser."""

from __future__ import annotations

import math

import numpy as np
import pytest

from hypothesis import given, settings, strategies as st

from repro.core.parser import (
    format_predicate,
    format_region,
    parse_predicate,
    parse_region,
)
from repro.core.predicate import Conjunction, Interval, ValueSet
from repro.core.region import BoxRegion
from repro.errors import InvalidParameterError


class TestParsePredicate:
    def test_simple_less_than(self):
        p = parse_predicate("age < 30")
        constraint = p.constraints["age"]
        assert isinstance(constraint, Interval)
        assert constraint.hi == 30
        assert constraint.lo == -math.inf

    def test_all_operators(self):
        assert parse_predicate("x < 5").constraints["x"].hi == 5
        assert parse_predicate("x >= 5").constraints["x"].lo == 5
        le = parse_predicate("x <= 5").constraints["x"]
        assert le.contains(5) and not le.contains(5.0001)
        gt = parse_predicate("x > 5").constraints["x"]
        assert not gt.contains(5) and gt.contains(5.0001)
        eq = parse_predicate("x = 5").constraints["x"]
        assert eq.contains(5) and not eq.contains(5.0001)

    def test_reversed_comparison(self):
        p = parse_predicate("30 <= age")
        assert p.constraints["age"].lo == 30
        p = parse_predicate("30 > age")
        assert p.constraints["age"].hi == 30

    def test_conjunction(self):
        p = parse_predicate("age < 30 and salary >= 100000")
        assert set(p.constraints) == {"age", "salary"}

    def test_value_set(self):
        p = parse_predicate("elevel in {0, 1, 2}")
        constraint = p.constraints["elevel"]
        assert isinstance(constraint, ValueSet)
        assert constraint.values == frozenset({0, 1, 2})

    def test_repeated_attribute_intersects(self):
        p = parse_predicate("age >= 20 and age < 30")
        constraint = p.constraints["age"]
        assert (constraint.lo, constraint.hi) == (20, 30)

    def test_empty_string_is_true(self):
        assert parse_predicate("").is_universal
        assert parse_predicate("   ").is_universal

    def test_scientific_notation_and_negative(self):
        p = parse_predicate("x >= -1.5e3")
        assert p.constraints["x"].lo == -1500.0

    def test_evaluates_against_data(self, small_tabular):
        p = parse_predicate("age < 50 and salary >= 100000")
        mask = small_tabular.predicate_mask(p)
        ages = small_tabular.column("age")
        salaries = small_tabular.column("salary")
        expected = (ages < 50) & (salaries >= 100_000)
        assert np.array_equal(mask, expected)

    def test_errors(self):
        with pytest.raises(InvalidParameterError):
            parse_predicate("age <")
        with pytest.raises(InvalidParameterError):
            parse_predicate("age < 30 and")
        with pytest.raises(InvalidParameterError):
            parse_predicate("and age < 30")
        with pytest.raises(InvalidParameterError):
            parse_predicate("elevel in {}")
        with pytest.raises(InvalidParameterError):
            parse_predicate("elevel in {1.5}")
        with pytest.raises(InvalidParameterError):
            parse_predicate("age ? 30")
        with pytest.raises(InvalidParameterError):
            parse_predicate("age < 30 and age in {1}")


class TestParseRegion:
    def test_plain_region(self):
        region = parse_region("age < 30")
        assert region.class_label is None
        assert region.predicate.constraints["age"].hi == 30

    def test_class_clause(self):
        region = parse_region("age < 30 and class = 1")
        assert region.class_label == 1
        assert set(region.predicate.constraints) == {"age"}

    def test_class_only(self):
        region = parse_region("class = 0")
        assert region.class_label == 0
        assert region.predicate.is_universal

    def test_empty_region_is_whole_space(self):
        region = parse_region("")
        assert region.class_label is None
        assert region.predicate.is_universal

    def test_duplicate_class_rejected(self):
        with pytest.raises(InvalidParameterError):
            parse_region("class = 0 and class = 1")

    def test_format_region_roundtrip(self):
        region = parse_region("age < 30 and elevel in {0, 1} and class = 1")
        assert parse_region(format_region(region)) == region

    def test_usable_as_focus(self, classify_pair):
        from repro.core.dtree_model import DtModel
        from repro.core.focus import focussed_deviation
        from repro.mining.tree.builder import TreeParams

        d1, d2 = classify_pair
        params = TreeParams(max_depth=3, min_leaf=50)
        m1, m2 = DtModel.fit(d1, params), DtModel.fit(d2, params)
        via_parser = focussed_deviation(
            m1, m2, d1, d2, parse_region("age < 40 and class = 0")
        ).value
        from repro.core.focus import box_focus

        via_builder = focussed_deviation(
            m1, m2, d1, d2, box_focus(class_label=0, age=(None, 40))
        ).value
        assert via_parser == pytest.approx(via_builder)


@st.composite
def random_conjunctions(draw):
    """Random predicates over a small attribute vocabulary."""
    constraints = {}
    for name in draw(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3,
                 unique=True)
    ):
        if draw(st.booleans()):
            lo = draw(st.one_of(st.none(), st.integers(-50, 50)))
            hi_base = lo if lo is not None else 0
            hi = draw(st.one_of(st.none(), st.integers(hi_base + 1, 100)))
            if lo is None and hi is None:
                continue
            constraints[name] = Interval(
                float(lo) if lo is not None else -float("inf"),
                float(hi) if hi is not None else float("inf"),
            )
        else:
            values = draw(
                st.lists(st.integers(0, 9), min_size=1, max_size=4, unique=True)
            )
            constraints[name] = ValueSet(values)
    return Conjunction(constraints)


@settings(max_examples=60, deadline=None)
@given(random_conjunctions())
def test_format_parse_roundtrip_property(predicate):
    """parse(format(p)) == p for arbitrary generated conjunctions."""
    assert parse_predicate(format_predicate(predicate)) == predicate


@settings(max_examples=40, deadline=None)
@given(random_conjunctions(), st.one_of(st.none(), st.integers(0, 3)))
def test_region_roundtrip_property(predicate, class_label):
    region = BoxRegion(predicate, class_label)
    assert parse_region(format_region(region)) == region
