"""Tests for the precompiled partition counting plan.

Covers the vectorised label routing (including the
``IncompatibleModelsError`` raised for labels outside the structure's
alphabet), the ``SchemaError`` parity with ``TabularDataset.box_mask``
for class-restricted structures over unlabelled data, the memoised
assigner passes (GCR overlays and repeat measurements reuse one scan),
and the ``counts_many`` batched path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attribute import AttributeSpace, numeric
from repro.core.deviation import deviation_over_structure_many
from repro.core.gcr import gcr
from repro.core.model import PartitionStructure
from repro.core.partition_plan import LabelEncoder, PartitionCountingPlan
from repro.core.predicate import interval_constraint
from repro.core.region import BoxRegion
from repro.data.tabular import TabularDataset
from repro.errors import IncompatibleModelsError, SchemaError

LABELLED = AttributeSpace((numeric("age", 0, 100),), class_labels=(3, 1, 7))
UNLABELLED = AttributeSpace((numeric("age", 0, 100),))


def _age_partition(class_labels, cut=50.0):
    """A two-cell partition of the age axis, optionally with classes."""
    low = interval_constraint("age", hi=cut)
    high = interval_constraint("age", lo=cut)

    def assigner(dataset):
        return (dataset.column("age") >= cut).astype(np.int64)

    return PartitionStructure(
        cells=(low, high), class_labels=class_labels, assigner=assigner
    )


def _counts_python_loop(structure, dataset):
    """The seed's per-row reference implementation (labelled, unfocussed)."""
    cell_idx = np.asarray(structure.assigner(dataset), dtype=np.int64)
    label_code = {label: i for i, label in enumerate(structure.class_labels)}
    codes = np.array([label_code[int(v)] for v in dataset.y], dtype=np.int64)
    k = len(structure.class_labels)
    flat = cell_idx * k + codes
    return np.bincount(flat, minlength=len(structure.cells) * k)


def _dataset(ages, labels=None, space=None):
    if space is None:
        space = LABELLED if labels is not None else UNLABELLED
    X = np.asarray(ages, dtype=np.float64).reshape(-1, 1)
    y = None if labels is None else np.asarray(labels, dtype=np.int64)
    return TabularDataset(space, X, y)


class TestVectorisedCounts:
    def test_matches_python_loop_reference(self):
        rng = np.random.default_rng(5)
        structure = _age_partition((3, 1, 7))
        dataset = _dataset(
            rng.uniform(0, 100, size=500),
            rng.choice([3, 1, 7], size=500),
        )
        np.testing.assert_array_equal(
            structure.counts(dataset), _counts_python_loop(structure, dataset)
        )

    def test_unlabelled_partition_counts(self):
        structure = _age_partition(())
        dataset = _dataset([10.0, 60.0, 70.0])
        assert structure.counts(dataset).tolist() == [1, 2]

    def test_empty_dataset(self):
        structure = _age_partition((3, 1, 7))
        empty = _dataset(np.empty(0), np.empty(0, dtype=np.int64))
        assert structure.counts(empty).tolist() == [0] * 6

    def test_counts_many_equals_per_snapshot_counts(self):
        rng = np.random.default_rng(6)
        structure = _age_partition((3, 1, 7))
        snapshots = [
            _dataset(
                rng.uniform(0, 100, size=n), rng.choice([3, 1, 7], size=n)
            )
            for n in (0, 17, 120)
        ]
        batch = structure.counts_many(snapshots)
        assert len(batch) == len(snapshots)
        for snapshot, counts in zip(snapshots, batch):
            np.testing.assert_array_equal(counts, structure.counts(snapshot))


class TestLabelRouting:
    def test_unseen_class_label_raises_incompatible(self):
        """An out-of-alphabet label names itself instead of a KeyError."""
        structure = _age_partition((3, 1))  # 7 is not in the alphabet
        snapshot = _dataset([10.0, 60.0, 80.0], [3, 1, 7])
        with pytest.raises(IncompatibleModelsError, match="label 7"):
            structure.counts(snapshot)

    def test_unlabelled_dataset_with_class_regions_raises(self):
        structure = _age_partition((3, 1, 7))
        with pytest.raises(IncompatibleModelsError, match="unlabelled"):
            structure.counts(_dataset([10.0, 60.0]))

    def test_label_encoder_declaration_order(self):
        encoder = LabelEncoder((3, 1, 7))
        codes, bad = encoder.encode(np.array([7, 3, 1, 3]))
        assert codes.tolist() == [2, 0, 1, 0]
        assert not bad.any()

    def test_label_encoder_flags_unknown(self):
        encoder = LabelEncoder((3, 1, 7))
        codes, bad = encoder.encode(np.array([3, 5, 7]))
        assert bad.tolist() == [False, True, False]


class TestFocusClassParity:
    """The satellite regression: counts and box_mask agree on unlabelled data."""

    def test_focus_class_on_unlabelled_raises_schema_error(self):
        structure = _age_partition(()).focussed(
            BoxRegion(interval_constraint("age", hi=100), class_label=1)
        )
        unlabelled = _dataset([10.0, 60.0])
        with pytest.raises(SchemaError):
            structure.counts(unlabelled)

    def test_counts_and_box_mask_agree(self):
        """Both measurement paths raise SchemaError on the same input."""
        region = BoxRegion(interval_constraint("age", hi=50), class_label=1)
        structure = _age_partition(()).focussed(region)
        unlabelled = _dataset([10.0, 60.0])
        with pytest.raises(SchemaError):
            unlabelled.box_mask(region)
        with pytest.raises(SchemaError):
            structure.counts(unlabelled)

    def test_focus_class_still_counts_labelled_data(self):
        structure = _age_partition((3, 1, 7)).focussed(
            BoxRegion(interval_constraint("age", hi=100), class_label=1)
        )
        dataset = _dataset([10.0, 60.0, 70.0, 20.0], [1, 1, 3, 7])
        assert structure.counts(dataset).tolist() == [1, 1]


class TestAssignmentMemo:
    def _counting_structure(self, class_labels=(), cut=50.0):
        calls = {"n": 0}
        low = interval_constraint("age", hi=cut)
        high = interval_constraint("age", lo=cut)

        def assigner(dataset):
            calls["n"] += 1
            return (dataset.column("age") >= cut).astype(np.int64)

        structure = PartitionStructure(
            cells=(low, high), class_labels=class_labels, assigner=assigner
        )
        return structure, calls

    def test_repeat_counts_share_one_assigner_pass(self):
        structure, calls = self._counting_structure()
        dataset = _dataset([10.0, 60.0, 70.0])
        structure.counts(dataset)
        structure.counts(dataset)
        structure.selectivities(dataset)
        assert calls["n"] == 1

    def test_focussed_overlay_reuses_the_pass(self):
        structure, calls = self._counting_structure()
        focussed = structure.focussed(
            BoxRegion(interval_constraint("age", hi=80))
        )
        dataset = _dataset([10.0, 60.0, 70.0])
        structure.counts(dataset)
        focussed.counts(dataset)
        assert calls["n"] == 1

    def test_gcr_overlay_reuses_base_passes(self):
        s1, calls1 = self._counting_structure(cut=50.0)
        s2, calls2 = self._counting_structure(cut=30.0)
        overlay = gcr(s1, s2)
        dataset = _dataset([10.0, 40.0, 60.0, 70.0])
        s1.counts(dataset)
        s2.counts(dataset)
        overlay.counts(dataset)  # composes the two memoised base passes
        assert calls1["n"] == 1
        assert calls2["n"] == 1

    def test_distinct_datasets_are_assigned_separately(self):
        structure, calls = self._counting_structure()
        structure.counts(_dataset([10.0, 60.0]))
        structure.counts(_dataset([10.0, 60.0]))  # different object
        assert calls["n"] == 2

    def test_grown_log_is_reassigned(self):
        from repro.stream.chunks import TabularLog

        structure, calls = self._counting_structure()
        log = TabularLog(UNLABELLED)
        log.append(np.array([[10.0], [60.0]]))
        assert structure.counts(log).tolist() == [1, 1]
        log.append(np.array([[70.0]]))
        assert structure.counts(log).tolist() == [1, 2]
        assert calls["n"] == 2


class TestBatchedDeviation:
    def test_deviation_over_structure_many_partition(self):
        rng = np.random.default_rng(11)
        structure = _age_partition((3, 1, 7))
        reference = _dataset(
            rng.uniform(0, 100, 300), rng.choice([3, 1, 7], 300)
        )
        snapshots = [
            _dataset(rng.uniform(0, 100, 200), rng.choice([3, 1, 7], 200))
            for _ in range(4)
        ]
        results = deviation_over_structure_many(
            structure, reference, snapshots
        )
        assert len(results) == 4
        for snapshot, result in zip(snapshots, results):
            np.testing.assert_array_equal(
                result.counts2, structure.counts(snapshot)
            )

    def test_plan_is_cached_on_structure(self):
        structure = _age_partition((3, 1, 7))
        assert structure.plan is structure.plan
        assert isinstance(structure.plan, PartitionCountingPlan)


def _reordered_pair():
    """Two structures over the same cell *set* in opposite orders."""
    low = interval_constraint("age", hi=50)
    high = interval_constraint("age", lo=50)

    def fwd(dataset):
        return (dataset.column("age") >= 50).astype(np.int64)

    def rev(dataset):
        return (dataset.column("age") < 50).astype(np.int64)

    a = PartitionStructure(cells=(low, high), class_labels=(), assigner=fwd)
    b = PartitionStructure(cells=(high, low), class_labels=(), assigner=rev)
    return a, b


class TestCountsAlignmentKey:
    """Regression: equal region *sets* in different orders never share
    positionally-aligned counts."""

    def test_counts_key_is_order_sensitive(self):
        a, b = _reordered_pair()
        assert a.key == b.key  # same set: mathematically the same structure
        assert a.counts_key != b.counts_key  # but counts do not align

    def test_reordered_sketches_refuse_to_merge(self):
        from repro.errors import IncompatibleModelsError
        from repro.stream.sketch import PartitionSketch

        a, b = _reordered_pair()
        dataset = _dataset([10.0, 60.0, 70.0])
        sa = PartitionSketch.from_dataset(dataset, a)
        sb = PartitionSketch.from_dataset(dataset, b)
        assert sa.counts.tolist() == [1, 2]
        assert sb.counts.tolist() == [2, 1]
        with pytest.raises(IncompatibleModelsError):
            sa + sb

    def test_memo_is_bounded_per_dataset(self):
        from repro.core.partition_plan import (
            _ASSIGNMENTS,
            _MAX_PASSES_PER_DATASET,
            cell_assignments,
        )

        dataset = _dataset([10.0, 60.0])
        assigners = [
            (lambda cut: lambda d: (d.column("age") >= cut).astype(np.int64))(c)
            for c in range(0, 4 * _MAX_PASSES_PER_DATASET)
        ]
        for assigner in assigners:
            cell_assignments(assigner, dataset)
        assert len(_ASSIGNMENTS[dataset]) == _MAX_PASSES_PER_DATASET
        # most-recently-used survive; the first ones were evicted
        kept = {id(a) for a in assigners[-_MAX_PASSES_PER_DATASET:]}
        assert set(_ASSIGNMENTS[dataset]) == kept


class TestRegionAssignments:
    """The per-row form behind the count-space bootstrap: ``counts``
    must equal the bincount of ``region_assignments`` with the
    excluded-rows sentinel bin dropped, under every focus configuration."""

    def _assert_consistent(self, structure, dataset):
        plan = PartitionCountingPlan(structure)
        flat = plan.region_assignments(dataset)
        r = plan.n_regions
        assert flat.shape == (len(dataset),)
        assert ((flat >= 0) & (flat <= r)).all()
        np.testing.assert_array_equal(
            np.bincount(flat, minlength=r + 1)[:r], plan.counts(dataset)
        )

    def test_labelled_partition(self):
        rng = np.random.default_rng(12)
        structure = _age_partition((3, 1, 7))
        dataset = _dataset(
            rng.uniform(0, 100, size=200), rng.choice([3, 1, 7], size=200)
        )
        assert structure.plan.n_regions == 6
        self._assert_consistent(structure, dataset)

    def test_unlabelled_partition(self):
        structure = _age_partition(())
        assert structure.plan.n_regions == 2
        self._assert_consistent(structure, _dataset([10.0, 60.0, 70.0]))

    def test_focus_predicate_rows_go_to_sentinel(self):
        structure = _age_partition(()).focussed(
            BoxRegion(interval_constraint("age", hi=30))
        )
        dataset = _dataset([10.0, 20.0, 60.0, 80.0])
        plan = PartitionCountingPlan(structure)
        flat = plan.region_assignments(dataset)
        # ages >= 30 are outside the focus: sentinel bin n_regions
        assert flat.tolist() == [0, 0, 2, 2]
        self._assert_consistent(structure, dataset)

    def test_focus_class_rows_go_to_sentinel(self):
        structure = _age_partition((3, 1, 7)).focussed(
            BoxRegion(interval_constraint("age", hi=100), class_label=1)
        )
        dataset = _dataset([10.0, 60.0, 70.0, 20.0], [1, 1, 3, 7])
        plan = PartitionCountingPlan(structure)
        assert plan.n_regions == 2
        flat = plan.region_assignments(dataset)
        assert flat.tolist() == [0, 1, 2, 2]
        self._assert_consistent(structure, dataset)

    def test_unseen_label_raises(self):
        structure = _age_partition((3, 1))
        snapshot = _dataset([10.0, 60.0], [3, 7])
        with pytest.raises(IncompatibleModelsError, match="label 7"):
            PartitionCountingPlan(structure).region_assignments(snapshot)

    def test_focus_class_on_unlabelled_raises(self):
        structure = _age_partition(()).focussed(
            BoxRegion(interval_constraint("age", hi=100), class_label=1)
        )
        with pytest.raises(SchemaError):
            PartitionCountingPlan(structure).region_assignments(
                _dataset([10.0])
            )
