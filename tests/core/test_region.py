"""Unit tests for box and itemset regions."""

from __future__ import annotations

import pytest

from repro.core.predicate import interval_constraint
from repro.core.region import BoxRegion, ItemsetRegion
from repro.errors import IncompatibleModelsError


class TestBoxRegion:
    def test_intersect_same_class(self):
        a = BoxRegion(interval_constraint("age", 0, 50), class_label=1)
        b = BoxRegion(interval_constraint("age", 30, 100), class_label=1)
        c = a.intersect(b)
        assert c is not None
        assert c.class_label == 1
        assert c.predicate.constraints["age"].lo == 30

    def test_intersect_conflicting_classes_is_empty(self):
        a = BoxRegion(interval_constraint("age", 0, 50), class_label=0)
        b = BoxRegion(interval_constraint("age", 0, 50), class_label=1)
        assert a.intersect(b) is None

    def test_intersect_class_with_classless(self):
        a = BoxRegion(interval_constraint("age", 0, 50), class_label=0)
        b = BoxRegion(interval_constraint("age", 20, 100))
        c = a.intersect(b)
        assert c is not None
        assert c.class_label == 0

    def test_intersect_disjoint_boxes_is_none(self):
        a = BoxRegion(interval_constraint("age", 0, 10))
        b = BoxRegion(interval_constraint("age", 20, 30))
        assert a.intersect(b) is None

    def test_intersect_wrong_kind_raises(self):
        a = BoxRegion(interval_constraint("age", 0, 10))
        with pytest.raises(IncompatibleModelsError):
            a.intersect(ItemsetRegion({1}))

    def test_contains(self):
        outer = BoxRegion(interval_constraint("age", 0, 50), class_label=1)
        inner = BoxRegion(interval_constraint("age", 10, 20), class_label=1)
        other_class = BoxRegion(interval_constraint("age", 10, 20), class_label=0)
        assert outer.contains(inner)
        assert not outer.contains(other_class)

    def test_equality_and_hash(self):
        a = BoxRegion(interval_constraint("age", 0, 50), class_label=1)
        b = BoxRegion(interval_constraint("age", 0, 50), class_label=1)
        c = BoxRegion(interval_constraint("age", 0, 50), class_label=0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_describe_mentions_class(self):
        r = BoxRegion(interval_constraint("age", 0, 50), class_label=1)
        assert "class = 1" in r.describe()

    def test_selectivity_delegates_to_dataset(self, small_tabular):
        region = BoxRegion(interval_constraint("age", 0, 50))
        value = region.selectivity(small_tabular)
        ages = small_tabular.column("age")
        assert value == pytest.approx(((ages >= 0) & (ages < 50)).mean())


class TestItemsetRegion:
    def test_intersection_unions_items(self):
        a = ItemsetRegion({1, 2})
        b = ItemsetRegion({2, 3})
        c = a.intersect(b)
        assert c.items == frozenset({1, 2, 3})

    def test_empty_itemset_is_whole_space(self, small_transactions):
        r = ItemsetRegion(set())
        assert r.selectivity(small_transactions) == 1.0

    def test_selectivity_counts_supersets(self, small_transactions):
        r = ItemsetRegion({0, 1})
        # Transactions containing both 0 and 1: 4 of 10.
        assert r.selectivity(small_transactions) == pytest.approx(0.4)

    def test_intersect_wrong_kind_raises(self):
        with pytest.raises(IncompatibleModelsError):
            ItemsetRegion({1}).intersect(
                BoxRegion(interval_constraint("age", 0, 1))
            )

    def test_describe(self):
        assert ItemsetRegion({2, 1}).describe() == "{1,2}"
        assert ItemsetRegion(set()).describe() == "{}"

    def test_equality(self):
        assert ItemsetRegion({1, 2}) == ItemsetRegion([2, 1])
        assert ItemsetRegion({1}) != ItemsetRegion({2})
