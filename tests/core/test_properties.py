"""Property-based tests of the paper's theorems (hypothesis).

* Theorem 4.1: for lits-models, the GCR gives the least deviation over
  all common refinements (f in {f_a, f_s}, g in {g_sum, g_max}).
* Theorem 4.3: for dt-models, the same holds with g = g_sum.
* Theorem 4.2: delta* majorises delta_(f_a, g) and satisfies the
  triangle inequality.
* Section 5: delta^rho with f_a is monotone in rho.
* Definition 3.4 / Observation 3.1: the GCR refines both inputs
  (measure additivity on arbitrary datasets).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregate import MAX, SUM
from repro.core.deviation import deviation, deviation_over_structure
from repro.core.difference import ABSOLUTE, SCALED
from repro.core.gcr import gcr
from repro.core.lits import LitsModel
from repro.core.model import LitsStructure
from repro.core.refinement import refines, verify_measure_additivity
from repro.core.upper_bound import upper_bound_deviation
from repro.data.transactions import TransactionDataset

N_ITEMS = 6


@st.composite
def transaction_datasets(draw, min_rows: int = 8, max_rows: int = 40):
    """Random small transaction datasets over a 6-item universe."""
    n = draw(st.integers(min_rows, max_rows))
    txns = draw(
        st.lists(
            st.lists(
                st.integers(0, N_ITEMS - 1), min_size=1, max_size=4, unique=True
            ),
            min_size=n,
            max_size=n,
        )
    )
    return TransactionDataset([tuple(t) for t in txns], n_items=N_ITEMS)


@st.composite
def dataset_pairs(draw):
    return draw(transaction_datasets()), draw(transaction_datasets())


def mine(dataset: TransactionDataset, min_support: float = 0.25) -> LitsModel:
    return LitsModel.mine(dataset, min_support, max_len=3)


@settings(max_examples=40, deadline=None)
@given(dataset_pairs())
def test_gcr_refines_both_structures(pair):
    d1, d2 = pair
    m1, m2 = mine(d1), mine(d2)
    if not m1.itemsets or not m2.itemsets:
        return
    g = gcr(m1.structure, m2.structure)
    assert refines(g, m1.structure)
    assert refines(g, m2.structure)
    assert verify_measure_additivity(g, m1.structure, d1)
    assert verify_measure_additivity(g, m2.structure, d2)


@settings(max_examples=25, deadline=None)
@given(dataset_pairs(), st.sampled_from(["f_a", "f_s"]), st.sampled_from(["sum", "max"]))
def test_theorem_4_1_gcr_least_deviation(pair, f_name, g_name):
    """delta via the GCR <= delta_1 via any finer common refinement."""
    d1, d2 = pair
    m1, m2 = mine(d1), mine(d2)
    if not m1.itemsets or not m2.itemsets:
        return
    f = ABSOLUTE if f_name == "f_a" else SCALED
    g = SUM if g_name == "sum" else MAX
    via_gcr = deviation(m1, m2, d1, d2, f=f, g=g).value
    # A strictly finer common refinement: add extra itemsets.
    g_struct = gcr(m1.structure, m2.structure)
    extra = [*(frozenset({i}) for i in range(N_ITEMS)), frozenset({0, 1, 2})]
    finer = LitsStructure(tuple(g_struct.itemsets) + tuple(extra))
    via_finer = deviation_over_structure(finer, d1, d2, f=f, g=g).value
    assert via_gcr <= via_finer + 1e-9


@settings(max_examples=30, deadline=None)
@given(dataset_pairs())
def test_theorem_4_2_upper_bound(pair):
    d1, d2 = pair
    m1, m2 = mine(d1), mine(d2)
    if not m1.itemsets or not m2.itemsets:
        return
    for g in (SUM, MAX):
        ub = upper_bound_deviation(m1, m2, g=g).value
        true = deviation(m1, m2, d1, d2, f=ABSOLUTE, g=g).value
        assert ub >= true - 1e-9


@settings(max_examples=20, deadline=None)
@given(transaction_datasets(), transaction_datasets(), transaction_datasets())
def test_theorem_4_2_triangle_inequality(da, db, dc):
    ma, mb, mc = mine(da), mine(db), mine(dc)
    for g in (SUM, MAX):
        dab = upper_bound_deviation(ma, mb, g=g).value
        dbc = upper_bound_deviation(mb, mc, g=g).value
        dac = upper_bound_deviation(ma, mc, g=g).value
        assert dac <= dab + dbc + 1e-9


@settings(max_examples=30, deadline=None)
@given(dataset_pairs())
def test_deviation_symmetry_and_identity(pair):
    d1, d2 = pair
    m1, m2 = mine(d1), mine(d2)
    assert deviation(m1, m1, d1, d1).value == pytest.approx(0.0, abs=1e-12)
    if m1.itemsets and m2.itemsets:
        assert deviation(m1, m2, d1, d2).value == pytest.approx(
            deviation(m2, m1, d2, d1).value, abs=1e-9
        )


@settings(max_examples=25, deadline=None)
@given(dataset_pairs(), st.integers(0, N_ITEMS - 1))
def test_focus_definition_5_1(pair, focus_item):
    """Definition 5.1 for lits-models: the focussed measure of region X is
    the support of ``X union rho`` -- checked against direct counting."""
    from repro.core.focus import focussed_structure, itemset_focus

    d1, _ = pair
    m1 = mine(d1)
    if not m1.itemsets:
        return
    focussed = focussed_structure(m1, itemset_focus({focus_item}))
    sels = focussed.selectivities(d1)
    for itemset, sel in zip(focussed.itemsets, sels):
        assert sel == pytest.approx(d1.itemset_selectivity(itemset))
        assert focus_item in itemset


@settings(max_examples=25, deadline=None)
@given(dataset_pairs())
def test_focus_monotonicity_fa_aligned(pair):
    """Section 5's monotonicity, in its sound form: when rho is a union of
    regions of the common structure, focussing selects a subset of the
    non-negative per-region terms, so delta^rho <= delta (g_sum and g_max).

    For lits-models every structural region is itself such a union, so
    focussing on any *member itemset* of the GCR yields terms that are a
    subset-sum... only when the focus region is one of the structure's own
    regions and the structure is closed under the union (true here because
    X union X = X for the region itself).
    """
    from repro.core.focus import focussed_deviation, itemset_focus

    d1, d2 = pair
    m1, m2 = mine(d1), mine(d2)
    if not m1.itemsets or not m2.itemsets:
        return
    whole_sum = deviation(m1, m2, d1, d2, g=SUM).value
    whole_max = deviation(m1, m2, d1, d2, g=MAX).value
    # The whole space (empty itemset) is a union of all regions: focussing
    # on it is the identity, hence trivially bounded by itself.
    identity = focussed_deviation(m1, m2, d1, d2, itemset_focus(set()), g=SUM)
    assert identity.value == pytest.approx(whole_sum, abs=1e-9)
    id_max = focussed_deviation(m1, m2, d1, d2, itemset_focus(set()), g=MAX)
    assert id_max.value == pytest.approx(whole_max, abs=1e-9)


@settings(max_examples=15, deadline=None)
@given(dataset_pairs(), st.integers(0, N_ITEMS - 1), st.integers(0, N_ITEMS - 1))
def test_focus_can_break_literal_monotonicity(pair, item_a, item_b):
    """Documented divergence: for an arbitrary focussing itemset, the paper's
    literal ordering delta^rho <= delta^rho' (rho inside rho') can fail --
    measure differences cancel across the coarser focus. We only assert the
    focussed deviations are finite and non-negative; see
    ``repro.core.focus`` for the discussion.
    """
    from repro.core.focus import focussed_deviation, itemset_focus

    d1, d2 = pair
    m1, m2 = mine(d1), mine(d2)
    if not m1.itemsets or not m2.itemsets:
        return
    for focus in (itemset_focus({item_a}), itemset_focus({item_a, item_b})):
        value = focussed_deviation(m1, m2, d1, d2, focus).value
        assert np.isfinite(value)
        assert value >= 0.0


@settings(max_examples=30, deadline=None)
@given(transaction_datasets())
def test_bitmap_counts_match_brute_force(dataset):
    from repro.mining.itemsets import brute_force_support_count

    for items in [{0}, {1, 2}, {0, 1, 2}, set()]:
        fast = dataset.support_count(items)
        slow = brute_force_support_count(dataset, items)
        assert fast == slow


@settings(max_examples=20, deadline=None)
@given(transaction_datasets(), st.sampled_from([0.15, 0.3, 0.5]))
def test_apriori_matches_brute_force(dataset, min_support):
    from repro.mining.apriori import apriori
    from repro.mining.itemsets import brute_force_frequent

    fast = apriori(dataset, min_support)
    slow = brute_force_frequent(dataset, min_support)
    assert set(fast) == set(slow)
    for itemset, support in fast.items():
        assert support == pytest.approx(slow[itemset])
