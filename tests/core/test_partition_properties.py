"""Property-based tests for partition (dt-model) structures.

Complements ``test_properties.py`` (lits-models) with the dt-model side:
Theorem 4.3 (GCR least deviation under g_sum), overlay associativity,
and the meet-semilattice properties of Proposition 4.2 -- all over
randomly generated labelled datasets and the trees they induce.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.attribute import AttributeSpace, numeric
from repro.core.deviation import deviation, deviation_over_structure
from repro.core.dtree_model import DtModel
from repro.core.gcr import gcr, gcr_partition
from repro.core.model import PartitionStructure
from repro.core.predicate import Conjunction, Interval
from repro.core.refinement import refines, verify_measure_additivity
from repro.data.tabular import TabularDataset
from repro.mining.tree.builder import TreeParams

SPACE = AttributeSpace(
    attributes=(numeric("x", 0, 100), numeric("y", 0, 100)),
    class_labels=(0, 1),
)


@st.composite
def labelled_datasets(draw, min_rows: int = 40, max_rows: int = 120):
    """Random 2-D labelled datasets with a noisy linear-ish concept."""
    n = draw(st.integers(min_rows, max_rows))
    seed = draw(st.integers(0, 2**31 - 1))
    slope = draw(st.floats(0.2, 3.0))
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 100, size=(n, 2))
    noise = rng.random(n) < 0.15
    y = ((X[:, 1] > slope * X[:, 0]) ^ noise).astype(np.int64)
    return TabularDataset(SPACE, X, y)


def fit(dataset: TabularDataset) -> DtModel:
    return DtModel.fit(dataset, TreeParams(max_depth=3, min_leaf=5))


def _axis_partition(cuts: tuple[float, ...], attr: str = "x") -> PartitionStructure:
    """A 1-attribute partition at the given cut points."""
    bounds = (-np.inf, *cuts, np.inf)
    cells = tuple(
        Conjunction({attr: Interval(lo, hi)})
        for lo, hi in zip(bounds, bounds[1:])
    )
    cuts_arr = np.array(cuts)

    def assigner(dataset):
        return np.searchsorted(cuts_arr, dataset.column(attr), side="right")

    return PartitionStructure(cells, (0, 1), assigner)


@settings(max_examples=20, deadline=None)
@given(labelled_datasets(), labelled_datasets())
def test_partition_gcr_refines_both(d1, d2):
    m1, m2 = fit(d1), fit(d2)
    g = gcr(m1.structure, m2.structure)
    assert refines(g, m1.structure)
    assert refines(g, m2.structure)
    assert verify_measure_additivity(g, m1.structure, d1)
    assert verify_measure_additivity(g, m2.structure, d2)


@settings(max_examples=15, deadline=None)
@given(labelled_datasets(), labelled_datasets())
def test_theorem_4_3_gcr_least_deviation_gsum(d1, d2):
    """delta via the GCR <= delta_1 via a strictly finer refinement."""
    from repro.core.difference import ABSOLUTE, SCALED
    from repro.core.aggregate import SUM

    m1, m2 = fit(d1), fit(d2)
    g_struct = gcr(m1.structure, m2.structure)
    # Refine further by overlaying an unrelated axis partition.
    finer = gcr_partition(g_struct, _axis_partition((17.0, 53.0), "y"))
    for f in (ABSOLUTE, SCALED):
        via_gcr = deviation(m1, m2, d1, d2, f=f, g=SUM).value
        via_finer = deviation_over_structure(finer, d1, d2, f=f, g=SUM).value
        assert via_gcr <= via_finer + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    st.tuples(st.floats(10, 40), st.floats(50, 90)),
    st.tuples(st.floats(20, 60),),
    labelled_datasets(),
)
def test_overlay_associativity(cuts_a, cuts_b, dataset):
    """gcr(gcr(a,b),c) and gcr(a,gcr(b,c)) have identical structure."""
    a = _axis_partition(tuple(sorted(cuts_a)), "x")
    b = _axis_partition(cuts_b, "y")
    c = _axis_partition((33.0, 66.0), "x")
    left = gcr_partition(gcr_partition(a, b), c)
    right = gcr_partition(a, gcr_partition(b, c))
    assert left.key == right.key
    assert np.array_equal(
        np.sort(left.counts(dataset)), np.sort(right.counts(dataset))
    )


@settings(max_examples=15, deadline=None)
@given(labelled_datasets())
def test_overlay_idempotent_and_commutative(dataset):
    m = fit(dataset)
    s = m.structure
    assert gcr(s, s) is s
    other = _axis_partition((25.0, 75.0), "x")
    ab = gcr_partition(s, other)
    ba = gcr_partition(other, s)
    assert ab.key == ba.key


@settings(max_examples=15, deadline=None)
@given(labelled_datasets(), labelled_datasets())
def test_meet_property_common_refinement_refines_gcr(d1, d2):
    """Any common refinement of the two structures refines their GCR."""
    m1, m2 = fit(d1), fit(d2)
    g = gcr(m1.structure, m2.structure)
    common = gcr_partition(g, _axis_partition((41.0,), "y"))
    assert refines(common, m1.structure)
    assert refines(common, m2.structure)
    assert refines(common, g)


@settings(max_examples=15, deadline=None)
@given(labelled_datasets(), labelled_datasets())
def test_dt_deviation_symmetry_and_identity(d1, d2):
    m1, m2 = fit(d1), fit(d2)
    assert deviation(m1, m1, d1, d1).value == pytest.approx(0.0, abs=1e-12)
    assert deviation(m1, m2, d1, d2).value == pytest.approx(
        deviation(m2, m1, d2, d1).value, abs=1e-9
    )


@settings(max_examples=15, deadline=None)
@given(labelled_datasets())
def test_theorem_5_2_me_identity_random_data(dataset):
    from repro.core.monitoring import (
        misclassification_error,
        misclassification_error_via_focus,
    )

    rng = np.random.default_rng(0)
    model = fit(dataset)
    # Evaluate on a shuffled relabelling to get nonzero error.
    other = dataset.relabel(rng.permutation(dataset.y))
    assert misclassification_error_via_focus(model, other) == pytest.approx(
        misclassification_error(model, other), abs=1e-12
    )
