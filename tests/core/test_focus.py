"""Tests for focussed deviations (Definitions 5.1/5.2, Theorem 5.1)."""

from __future__ import annotations

import pytest

from repro.core.aggregate import MAX, SUM
from repro.core.deviation import deviation
from repro.core.difference import SCALED
from repro.core.dtree_model import DtModel
from repro.core.focus import (
    box_focus,
    focussed_deviation,
    focussed_structure,
    itemset_focus,
)
from repro.core.lits import LitsModel
from repro.errors import IncompatibleModelsError, InvalidParameterError
from repro.mining.tree.builder import TreeParams


class TestBoxFocusBuilder:
    def test_interval_spec(self):
        region = box_focus(age=(None, 30))
        constraint = region.predicate.constraints["age"]
        assert constraint.hi == 30
        assert constraint.lo == float("-inf")

    def test_value_spec(self):
        region = box_focus(elevel=[0, 1])
        assert region.predicate.constraints["elevel"].values == frozenset({0, 1})

    def test_class_only(self):
        region = box_focus(class_label=1)
        assert region.predicate.is_universal
        assert region.class_label == 1

    def test_bad_spec_rejected(self):
        with pytest.raises(InvalidParameterError):
            box_focus(age=30)


class TestLitsFocus:
    @pytest.fixture
    def mined(self, basket_pair):
        d1, d2 = basket_pair
        return LitsModel.mine(d1, 0.05), LitsModel.mine(d2, 0.05), d1, d2

    def test_focus_unions_items(self, mined):
        m1, _, _, _ = mined
        focussed = focussed_structure(m1, itemset_focus({0}))
        for itemset in focussed.itemsets:
            assert 0 in itemset

    def test_empty_focus_is_identity(self, mined):
        m1, m2, d1, d2 = mined
        whole = deviation(m1, m2, d1, d2).value
        focussed = focussed_deviation(m1, m2, d1, d2, itemset_focus(set())).value
        assert focussed == pytest.approx(whole)

    def test_focussed_measures_are_union_supports(self, mined):
        """Definition 5.1: sigma of a focussed region is the support of the
        union itemset."""
        m1, _, d1, _ = mined
        focussed = focussed_structure(m1, itemset_focus({0}))
        sels = focussed.selectivities(d1)
        for itemset, sel in zip(focussed.itemsets, sels):
            assert sel == pytest.approx(d1.itemset_selectivity(itemset))

    def test_box_focus_on_lits_rejected(self, mined):
        m1, m2, d1, d2 = mined
        with pytest.raises(IncompatibleModelsError):
            focussed_deviation(m1, m2, d1, d2, box_focus(age=(None, 30)))


class TestDtFocus:
    @pytest.fixture
    def fitted(self, classify_pair):
        d1, d2 = classify_pair
        params = TreeParams(max_depth=4, min_leaf=30)
        return DtModel.fit(d1, params), DtModel.fit(d2, params), d1, d2

    def test_class_focus_decomposes_sum(self, fitted):
        m1, m2, d1, d2 = fitted
        whole = deviation(m1, m2, d1, d2).value
        by_class = sum(
            focussed_deviation(m1, m2, d1, d2, box_focus(class_label=c)).value
            for c in (0, 1)
        )
        assert by_class == pytest.approx(whole)

    def test_class_focus_monotone_under_fa(self, fitted):
        """Sound monotonicity: a class region is a union of GCR regions, so
        focussing on it selects a subset of the non-negative terms."""
        m1, m2, d1, d2 = fitted
        whole_sum = deviation(m1, m2, d1, d2, g=SUM).value
        whole_max = deviation(m1, m2, d1, d2, g=MAX).value
        for c in (0, 1):
            focus = box_focus(class_label=c)
            assert (
                focussed_deviation(m1, m2, d1, d2, focus, g=SUM).value
                <= whole_sum + 1e-12
            )
            assert (
                focussed_deviation(m1, m2, d1, d2, focus, g=MAX).value
                <= whole_max + 1e-12
            )

    def test_age_focus_monotone_on_this_data(self, fitted):
        """Data-dependent check of the paper's monotonicity note; holds on
        these fixtures (an arbitrary box can in principle break it -- see
        repro.core.focus)."""
        m1, m2, d1, d2 = fitted
        wide = focussed_deviation(m1, m2, d1, d2, box_focus(age=(None, 60))).value
        narrow = focussed_deviation(m1, m2, d1, d2, box_focus(age=(None, 40))).value
        assert narrow <= wide + 1e-12

    def test_scaled_focus_not_necessarily_monotone(self, fitted):
        """The paper notes monotonicity fails for f_s -- just assert it runs
        and is non-negative (no ordering guarantee)."""
        m1, m2, d1, d2 = fitted
        value = focussed_deviation(
            m1, m2, d1, d2, box_focus(age=(None, 40)), f=SCALED
        ).value
        assert value >= 0.0

    def test_disjoint_focus_zero(self, fitted):
        """A focus region outside the data's support has zero deviation."""
        m1, m2, d1, d2 = fitted
        value = focussed_deviation(
            m1, m2, d1, d2, box_focus(age=(2_000, 3_000))
        ).value
        assert value == 0.0

    def test_nested_focus_composes(self, fitted):
        m1, m2, d1, d2 = fitted
        once = m1.structure.focussed(box_focus(age=(None, 40)))
        twice = once.focussed(box_focus(salary=(50_000, None)))
        both = m1.structure.focussed(
            box_focus(age=(None, 40), salary=(50_000, None))
        )
        assert twice.counts(d1).sum() == both.counts(d1).sum()

    def test_conflicting_nested_class_focus_rejected(self, fitted):
        m1, _, _, _ = fitted
        once = m1.structure.focussed(box_focus(class_label=0))
        with pytest.raises(IncompatibleModelsError):
            once.focussed(box_focus(class_label=1))
