"""The paper's worked examples, reproduced end to end.

Section 2 computes three deviations by hand:

* the dt example of Figure 5: deviation over the class-C1 regions of the
  GCR is 0.175, and focussed on ``age < 30`` it is 0.08;
* the lits example of Figure 6: ``delta_(f_a,g_sum)(L1, L2)`` over the
  GCR supports, and ``delta_(f_a,g_max) = 0.4``.

Note on Figure 6's sum: the per-itemset terms are |0.5-0.1|, |0.4-0.3|,
|0.1-0.5|, |0.25-0.05|, |0.05-0.2| = 0.4+0.1+0.4+0.2+0.15, which totals
**1.25**; the paper prints 1.125 (an arithmetic slip in the text -- its
own Section 4.1 lists the same five terms). We assert the correct sum.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attribute import AttributeSpace, numeric
from repro.core.deviation import deviation
from repro.core.dtree_model import DtModel
from repro.core.focus import box_focus, focussed_deviation
from repro.core.lits import LitsModel
from repro.core.upper_bound import upper_bound_deviation
from repro.core.aggregate import MAX, SUM
from repro.data.tabular import TabularDataset
from repro.data.transactions import TransactionDataset
from repro.mining.tree.splits import NumericSplit
from repro.mining.tree.tree import DecisionTree, Node


# --------------------------------------------------------------------- #
# Figure 5: the dt-model example.
# --------------------------------------------------------------------- #

C1, C2 = 0, 1

SPACE = AttributeSpace(
    attributes=(numeric("age", 0, 100), numeric("salary", 0, 200_000)),
    class_labels=(C1, C2),
)

# GCR cell geometry: age boundaries 30, 50; salary boundaries 80K, 100K.
# (cell midpoint, C1 selectivity in D1, in D2, C2 selectivity in D1, in D2)
CELLS = [
    # (age, salary)            C1: D1, D2      C2: D1, D2
    ((25, 50_000), 0.100, 0.14, 0.200, 0.20),  # age<30, sal<80K
    ((25, 90_000), 0.000, 0.04, 0.100, 0.10),  # age<30, sal>=80K
    ((40, 50_000), 0.000, 0.00, 0.200, 0.12),  # 30<=age<50, sal<80K
    ((40, 90_000), 0.000, 0.00, 0.100, 0.10),  # 30<=age<50, 80K<=sal<100K
    ((40, 110_000), 0.000, 0.00, 0.095, 0.10),  # 30<=age<50, sal>=100K
    ((60, 90_000), 0.005, 0.10, 0.100, 0.05),  # age>=50, sal<100K
    ((60, 110_000), 0.000, 0.00, 0.100, 0.05),  # age>=50, sal>=100K
]


def _build_dataset(column: str) -> TabularDataset:
    """A 1000-tuple dataset realising the chosen cell selectivities exactly."""
    n = 1000
    rows, labels = [], []
    for (age, salary), c1_d1, c1_d2, c2_d1, c2_d2 in CELLS:
        c1_frac = c1_d1 if column == "D1" else c1_d2
        c2_frac = c2_d1 if column == "D1" else c2_d2
        rows.extend([[age, salary]] * round(c1_frac * n))
        labels.extend([C1] * round(c1_frac * n))
        rows.extend([[age, salary]] * round(c2_frac * n))
        labels.extend([C2] * round(c2_frac * n))
    assert len(rows) == n, f"selectivities must sum to 1, got {len(rows)}"
    return TabularDataset(SPACE, np.array(rows, dtype=float), np.array(labels))


def _leaf() -> Node:
    return Node(class_counts=np.array([1, 1]))


def _tree_t1() -> DecisionTree:
    """T1 of Figure 5: split at age 30; right child splits at salary 100K."""
    root = Node(
        class_counts=np.array([2, 2]),
        split=NumericSplit("age", 30.0, 1.0),
        left=_leaf(),
        right=Node(
            class_counts=np.array([1, 1]),
            split=NumericSplit("salary", 100_000.0, 1.0),
            left=_leaf(),
            right=_leaf(),
        ),
    )
    return DecisionTree(space=SPACE, root=root)


def _tree_t2() -> DecisionTree:
    """T2 of Figure 5: split at age 50; left child splits at salary 80K."""
    root = Node(
        class_counts=np.array([2, 2]),
        split=NumericSplit("age", 50.0, 1.0),
        left=Node(
            class_counts=np.array([1, 1]),
            split=NumericSplit("salary", 80_000.0, 1.0),
            left=_leaf(),
            right=_leaf(),
        ),
        right=_leaf(),
    )
    return DecisionTree(space=SPACE, root=root)


@pytest.fixture(scope="module")
def dt_setup():
    d1 = _build_dataset("D1")
    d2 = _build_dataset("D2")
    return DtModel(_tree_t1()), DtModel(_tree_t2()), d1, d2


class TestFigure5:
    def test_gcr_has_seven_cells_per_class(self, dt_setup):
        m1, m2, d1, d2 = dt_setup
        result = deviation(m1, m2, d1, d2)
        # 7 overlay cells x 2 classes.
        assert len(result.regions) == 14

    def test_deviation_over_c1_regions_is_0_175(self, dt_setup):
        m1, m2, d1, d2 = dt_setup
        result = focussed_deviation(m1, m2, d1, d2, box_focus(class_label=C1))
        assert result.value == pytest.approx(0.175)

    def test_focussed_on_age_below_30_is_0_08(self, dt_setup):
        m1, m2, d1, d2 = dt_setup
        result = focussed_deviation(
            m1, m2, d1, d2, box_focus(class_label=C1, age=(None, 30))
        )
        assert result.value == pytest.approx(0.08)

    def test_full_deviation_adds_c2_contributions(self, dt_setup):
        m1, m2, d1, d2 = dt_setup
        full = deviation(m1, m2, d1, d2).value
        c1 = focussed_deviation(m1, m2, d1, d2, box_focus(class_label=C1)).value
        c2 = focussed_deviation(m1, m2, d1, d2, box_focus(class_label=C2)).value
        assert full == pytest.approx(c1 + c2)
        assert c2 == pytest.approx(0.08 + 0.005 + 0.05 + 0.05)

    def test_exploratory_region_2_deviation(self, dt_setup):
        """Region (2) of Section 5.1: age>=50, salary<100K, class C1 -> 0.095."""
        m1, m2, d1, d2 = dt_setup
        result = focussed_deviation(
            m1, m2, d1, d2,
            box_focus(class_label=C1, age=(50, None), salary=(None, 100_000)),
        )
        assert result.value == pytest.approx(0.095)


# --------------------------------------------------------------------- #
# Figure 6: the lits-model example.
# --------------------------------------------------------------------- #

A, B, C, D_ITEM, E_ITEM = 0, 1, 2, 3, 4


def _basket(counts: dict[tuple[int, ...], int]) -> TransactionDataset:
    txns: list[tuple[int, ...]] = []
    for items, count in counts.items():
        txns.extend([items] * count)
    return TransactionDataset(txns, n_items=5)


@pytest.fixture(scope="module")
def lits_setup():
    # D1: supp(a)=.5, supp(b)=.4, supp(ab)=.25, supp(c)=.1, supp(bc)=.05
    d1 = _basket(
        {
            (A, B): 25,
            (A,): 25,
            (B, C): 5,
            (B,): 10,
            (C,): 5,
            (D_ITEM,): 15,
            (E_ITEM,): 15,
        }
    )
    # D2: supp(b)=.3, supp(c)=.5, supp(bc)=.2, supp(a)=.1, supp(ab)=.05
    d2 = _basket(
        {
            (A, B): 5,
            (A,): 5,
            (B, C): 20,
            (B,): 5,
            (C,): 30,
            (D_ITEM,): 18,
            (E_ITEM,): 17,
        }
    )
    m1 = LitsModel.mine(d1, min_support=0.2)
    m2 = LitsModel.mine(d2, min_support=0.2)
    return m1, m2, d1, d2


class TestFigure6:
    def test_mined_models_match_figure(self, lits_setup):
        m1, m2, _, _ = lits_setup
        assert set(m1.itemsets) == {
            frozenset({A}), frozenset({B}), frozenset({A, B}),
        }
        assert set(m2.itemsets) == {
            frozenset({B}), frozenset({C}), frozenset({B, C}),
        }
        assert m1.support({A}) == pytest.approx(0.5)
        assert m1.support({B}) == pytest.approx(0.4)
        assert m1.support({A, B}) == pytest.approx(0.25)
        assert m2.support({B}) == pytest.approx(0.3)
        assert m2.support({C}) == pytest.approx(0.5)
        assert m2.support({B, C}) == pytest.approx(0.2)

    def test_gcr_is_union_of_itemsets(self, lits_setup):
        m1, m2, d1, d2 = lits_setup
        result = deviation(m1, m2, d1, d2)
        gcr_itemsets = {r.items for r in result.regions}
        assert gcr_itemsets == {
            frozenset({A}), frozenset({B}), frozenset({C}),
            frozenset({A, B}), frozenset({B, C}),
        }

    def test_sum_deviation(self, lits_setup):
        """The five |.|-terms of Figure 6 sum to 1.25 (paper misprints 1.125)."""
        m1, m2, d1, d2 = lits_setup
        result = deviation(m1, m2, d1, d2, g=SUM)
        assert result.value == pytest.approx(
            abs(0.5 - 0.1) + abs(0.4 - 0.3) + abs(0.1 - 0.5)
            + abs(0.25 - 0.05) + abs(0.05 - 0.2)
        )
        assert result.value == pytest.approx(1.25)

    def test_max_deviation_is_0_4(self, lits_setup):
        """Section 4.1: delta_(f_a, g_max)(L1, L2) = 0.4."""
        m1, m2, d1, d2 = lits_setup
        result = deviation(m1, m2, d1, d2, g=MAX)
        assert result.value == pytest.approx(0.4)

    def test_upper_bound_majorises(self, lits_setup):
        m1, m2, d1, d2 = lits_setup
        ub = upper_bound_deviation(m1, m2, g=SUM)
        # a only in L1 (0.5), b both (0.1), c only in L2 (0.5),
        # ab only in L1 (0.25), bc only in L2 (0.2).
        assert ub.value == pytest.approx(0.5 + 0.1 + 0.5 + 0.25 + 0.2)
        assert ub.value >= deviation(m1, m2, d1, d2, g=SUM).value
