"""Tests for the Structure implementations (LitsStructure, PartitionStructure)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import LitsStructure, PartitionStructure
from repro.core.predicate import interval_constraint
from repro.core.region import BoxRegion, ItemsetRegion
from repro.errors import IncompatibleModelsError, InvalidParameterError


class TestLitsStructure:
    def test_canonical_ordering_and_dedup(self):
        s = LitsStructure(
            [frozenset({2}), frozenset({1}), frozenset({1}), frozenset({1, 2})]
        )
        assert s.itemsets == (
            frozenset({1}), frozenset({2}), frozenset({1, 2}),
        )

    def test_key_is_order_insensitive(self):
        a = LitsStructure([frozenset({1}), frozenset({2})])
        b = LitsStructure([frozenset({2}), frozenset({1})])
        assert a.key == b.key
        assert a == b

    def test_counts(self, small_transactions):
        s = LitsStructure([frozenset({0}), frozenset({0, 1})])
        counts = s.counts(small_transactions)
        assert counts.tolist() == [6, 4]

    def test_selectivities_empty_dataset(self):
        from repro.data.transactions import TransactionDataset

        s = LitsStructure([frozenset({0})])
        empty = TransactionDataset([], n_items=2)
        assert s.selectivities(empty).tolist() == [0.0]

    def test_focussed_requires_itemset_region(self):
        s = LitsStructure([frozenset({0})])
        with pytest.raises(IncompatibleModelsError):
            s.focussed(BoxRegion(interval_constraint("x", 0, 1)))

    def test_len(self):
        assert len(LitsStructure([frozenset({0}), frozenset({1})])) == 2


def _two_cell_partition(space_names=("age",)):
    """A partition of the age axis at 50, with classes (0, 1)."""
    low = interval_constraint("age", hi=50)
    high = interval_constraint("age", lo=50)

    def assigner(dataset):
        return (dataset.column("age") >= 50).astype(np.int64)

    return PartitionStructure(
        cells=(low, high), class_labels=(0, 1), assigner=assigner
    )


class TestPartitionStructure:
    def test_regions_are_cells_times_classes(self):
        s = _two_cell_partition()
        assert len(s.regions) == 4
        labels = [r.class_label for r in s.regions]
        assert labels == [0, 1, 0, 1]

    def test_counts_histogram(self, two_d_space):
        from repro.data.tabular import TabularDataset

        X = np.array([[20.0, 0.0], [60.0, 0.0], [70.0, 0.0]])
        y = np.array([0, 1, 1])
        data = TabularDataset(two_d_space, X, y)
        s = _two_cell_partition()
        # cells x classes: (low,0)=1, (low,1)=0, (high,0)=0, (high,1)=2.
        assert s.counts(data).tolist() == [1, 0, 0, 2]

    def test_counts_sum_to_n(self, small_tabular):
        s = _two_cell_partition()
        assert s.counts(small_tabular).sum() == len(small_tabular)

    def test_unlabelled_dataset_with_class_regions_rejected(self, two_d_space):
        from repro.core.attribute import AttributeSpace
        from repro.data.tabular import TabularDataset

        unlabelled_space = AttributeSpace(two_d_space.attributes, ())
        data = TabularDataset(unlabelled_space, np.array([[1.0, 2.0]]))
        s = _two_cell_partition()
        with pytest.raises(IncompatibleModelsError):
            s.counts(data)

    def test_focus_predicate_restricts_counts(self, two_d_space):
        from repro.data.tabular import TabularDataset

        X = np.array([[20.0, 0.0], [60.0, 0.0], [70.0, 0.0]])
        y = np.array([0, 1, 1])
        data = TabularDataset(two_d_space, X, y)
        s = _two_cell_partition().focussed(
            BoxRegion(interval_constraint("age", hi=65))
        )
        # Only rows with age < 65 are counted.
        assert s.counts(data).sum() == 2

    def test_focus_class_collapses_regions(self, small_tabular):
        s = _two_cell_partition().focussed(BoxRegion(class_label=1))
        assert len(s.regions) == 2
        assert all(r.class_label == 1 for r in s.regions)
        y = small_tabular.y
        assert s.counts(small_tabular).sum() == int((y == 1).sum())

    def test_empty_cells_rejected(self):
        with pytest.raises(InvalidParameterError):
            PartitionStructure(cells=(), class_labels=(), assigner=lambda d: None)

    def test_itemset_focus_rejected(self):
        s = _two_cell_partition()
        with pytest.raises(IncompatibleModelsError):
            s.focussed(ItemsetRegion({0}))
