"""Tests for the batched deviation engine and its consumers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deviation import (
    deviation,
    deviation_many,
    deviation_over_structure,
    deviation_over_structure_many,
)
from repro.core.difference import DifferenceFunction
from repro.core.dtree_model import DtModel
from repro.core.lits import LitsModel
from repro.core.monitor import ChangeMonitor
from repro.core.region import ItemsetRegion
from repro.data.quest_basket import generate_basket
from repro.data.quest_classify import generate_classification
from repro.errors import InvalidParameterError
from repro.mining.tree.builder import TreeParams

#: A signed difference function: positive where dataset 2 gained
#: selectivity, negative where it lost it.
SIGNED = DifferenceFunction(
    "f_signed",
    lambda nu1, nu2, n1, n2: (nu2 / n2 if n2 else nu2) - (nu1 / n1 if n1 else nu1),
)


@pytest.fixture(scope="module")
def fleet():
    datasets = [
        generate_basket(
            400, n_items=30, avg_transaction_len=5, n_patterns=25,
            avg_pattern_len=3 + (s % 2), seed=100 + s,
        )
        for s in range(5)
    ]
    models = [LitsModel.mine(d, 0.04, max_len=3) for d in datasets]
    return datasets, models


class TestDeviationMany:
    def test_matches_per_pair_deviation(self, fleet):
        datasets, models = fleet
        results = deviation_many(models[0], models[1:], datasets[0], datasets[1:])
        assert len(results) == 4
        for model, dataset, result in zip(models[1:], datasets[1:], results):
            single = deviation(models[0], model, datasets[0], dataset)
            assert result.value == pytest.approx(single.value, abs=1e-12)
            assert result.counts1.tolist() == single.counts1.tolist()
            assert result.counts2.tolist() == single.counts2.tolist()
            assert result.regions == single.regions

    def test_reference_dataset_scanned_once(self, fleet, monkeypatch):
        """One batched counting call on the reference, one per window."""
        from repro.data.transactions import BitmapIndex

        datasets, models = fleet
        calls = []
        original = BitmapIndex.support_counts

        def counting(self, itemsets, **kwargs):
            calls.append(id(self))
            return original(self, itemsets, **kwargs)

        monkeypatch.setattr(BitmapIndex, "support_counts", counting)
        deviation_many(models[0], models[1:], datasets[0], datasets[1:])
        # 1 union pass over the reference + 1 pass per fleet window; no
        # index is counted more than once.
        assert len(calls) == len(datasets)
        assert len(set(calls)) == len(calls)

    def test_focus_applies_to_every_pair(self, fleet):
        datasets, models = fleet
        focus = ItemsetRegion(frozenset({0}))
        results = deviation_many(
            models[0], models[1:3], datasets[0], datasets[1:3], focus=focus
        )
        for model, dataset, result in zip(models[1:3], datasets[1:3], results):
            single = deviation(
                models[0], model, datasets[0], dataset, focus=focus
            )
            assert result.value == pytest.approx(single.value, abs=1e-12)

    def test_identical_structure_pairs_need_no_scan(self, fleet):
        datasets, models = fleet
        reference = models[0]
        sels = reference.structure.selectivities(datasets[1])
        clone = LitsModel(
            dict(zip(reference.structure.itemsets, sels)), 0.04,
            datasets[1].n_items,
        )
        batch = deviation_many(reference, [clone], datasets[0], [datasets[1]])[0]
        single = deviation(reference, clone, datasets[0], datasets[1])
        assert batch.value == pytest.approx(single.value, abs=1e-12)

    def test_partition_models_fall_back_per_pair(self):
        params = TreeParams(max_depth=3, min_leaf=25)
        datasets = [
            generate_classification(500, function=1 + (s % 2), seed=50 + s)
            for s in range(3)
        ]
        models = [DtModel.fit(d, params) for d in datasets]
        results = deviation_many(models[0], models[1:], datasets[0], datasets[1:])
        for model, dataset, result in zip(models[1:], datasets[1:], results):
            single = deviation(models[0], model, datasets[0], dataset)
            assert result.value == pytest.approx(single.value, abs=1e-12)

    def test_misaligned_fleet_rejected(self, fleet):
        datasets, models = fleet
        with pytest.raises(InvalidParameterError):
            deviation_many(models[0], models[1:], datasets[0], datasets[1:3])

    def test_empty_fleet(self, fleet):
        datasets, models = fleet
        assert deviation_many(models[0], [], datasets[0], []) == []


class TestDeviationOverStructureMany:
    def test_matches_per_snapshot(self, fleet):
        datasets, models = fleet
        structure = models[0].structure
        results = deviation_over_structure_many(structure, datasets[0], datasets[1:])
        for dataset, result in zip(datasets[1:], results):
            single = deviation_over_structure(structure, datasets[0], dataset)
            assert result.value == pytest.approx(single.value, abs=1e-12)


class TestTopRegionsSigned:
    def test_signed_f_ranks_by_magnitude(self, fleet):
        datasets, models = fleet
        result = deviation(
            models[0], models[1], datasets[0], datasets[1], f=SIGNED
        )
        per_region = result.per_region
        assert (per_region < 0).any(), "fixture should produce losses too"
        tops = result.top_regions(5)
        magnitudes = [abs(t.value) for t in tops]
        # ranked by magnitude, descending ...
        assert magnitudes == sorted(magnitudes, reverse=True)
        assert magnitudes[0] == pytest.approx(np.abs(per_region).max())
        # ... while the signed values are preserved in the breakdown.
        biggest_loss = float(per_region.min())
        k_all = result.top_regions(len(per_region))
        assert any(t.value == pytest.approx(biggest_loss) for t in k_all)


class TestObserveMany:
    def test_fixed_policy_matches_sequential(self, fleet):
        datasets, models = fleet

        def builder(d):
            return LitsModel.mine(d, 0.04, max_len=3)

        batch_monitor = ChangeMonitor(
            builder, n_boot=8, rng=np.random.default_rng(5)
        ).fit(datasets[0])
        seq_monitor = ChangeMonitor(
            builder, n_boot=8, rng=np.random.default_rng(5)
        ).fit(datasets[0])

        batched = batch_monitor.observe_many(datasets[1:])
        sequential = [seq_monitor.observe(d) for d in datasets[1:]]
        assert [o.index for o in batched] == [o.index for o in sequential]
        for b, s in zip(batched, sequential):
            assert b.deviation == pytest.approx(s.deviation, abs=1e-12)
            assert b.significance == pytest.approx(s.significance)
            assert b.drifted == s.drifted
        assert batch_monitor.history == batched

    def test_reset_on_drift_falls_back_to_sequential(self, fleet):
        datasets, _ = fleet

        def builder(d):
            return LitsModel.mine(d, 0.04, max_len=3)

        monitor = ChangeMonitor(
            builder, n_boot=8, policy="reset_on_drift",
            rng=np.random.default_rng(5),
        ).fit(datasets[0])
        observations = monitor.observe_many(datasets[1:])
        assert [o.index for o in observations] == [1, 2, 3, 4]
