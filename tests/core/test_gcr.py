"""Tests for greatest-common-refinement construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dtree_model import DtModel
from repro.core.gcr import gcr, gcr_lits, gcr_partition
from repro.core.lits import LitsModel
from repro.core.model import LitsStructure
from repro.core.refinement import refines, verify_measure_additivity
from repro.errors import IncompatibleModelsError
from repro.mining.tree.builder import TreeParams


def lits(*itemsets) -> LitsStructure:
    return LitsStructure([frozenset(s) for s in itemsets])


class TestLitsGcr:
    def test_union(self):
        s1 = lits({0}, {1}, {0, 1})
        s2 = lits({1}, {2}, {1, 2})
        g = gcr_lits(s1, s2)
        assert set(g.itemsets) == {
            frozenset({0}), frozenset({1}), frozenset({2}),
            frozenset({0, 1}), frozenset({1, 2}),
        }

    def test_identical_structures_returned_as_is(self):
        s1 = lits({0}, {1})
        s2 = lits({1}, {0})
        assert gcr(s1, s2) is s1

    def test_gcr_refines_both(self):
        s1 = lits({0}, {0, 1})
        s2 = lits({2})
        g = gcr(s1, s2)
        assert refines(g, s1)
        assert refines(g, s2)

    def test_gcr_is_least_upper_refinement(self):
        """Any common refinement refines the GCR (meet property)."""
        s1 = lits({0})
        s2 = lits({1})
        g = gcr(s1, s2)
        finer = lits({0}, {1}, {2}, {0, 1})
        assert refines(finer, g)
        # But the GCR does not refine the strictly finer structure.
        assert not refines(g, finer)

    def test_gcr_idempotent(self):
        s1 = lits({0}, {1})
        assert gcr(s1, s1).key == s1.key

    def test_measure_additivity_on_data(self, small_transactions):
        s1 = lits({0}, {0, 1})
        s2 = lits({1}, {2})
        g = gcr(s1, s2)
        assert verify_measure_additivity(g, s1, small_transactions)
        assert verify_measure_additivity(g, s2, small_transactions)


class TestPartitionGcr:
    @pytest.fixture
    def two_models(self, classify_pair):
        d1, d2 = classify_pair
        params = TreeParams(max_depth=3, min_leaf=30)
        return DtModel.fit(d1, params), DtModel.fit(d2, params), d1, d2

    def test_overlay_cell_count(self, two_models):
        m1, m2, _, _ = two_models
        g = gcr_partition(m1.structure, m2.structure)
        # At most the product of the two cell counts, at least the max.
        n1, n2 = len(m1.structure.cells), len(m2.structure.cells)
        assert max(n1, n2) <= len(g.cells) <= n1 * n2

    def test_overlay_refines_both(self, two_models):
        m1, m2, _, _ = two_models
        g = gcr_partition(m1.structure, m2.structure)
        assert refines(g, m1.structure)
        assert refines(g, m2.structure)

    def test_overlay_counts_partition_every_tuple(self, two_models):
        """GCR counts over all (cell, class) regions sum to the dataset size."""
        m1, m2, d1, _ = two_models
        g = gcr_partition(m1.structure, m2.structure)
        assert g.counts(d1).sum() == len(d1)

    def test_overlay_measures_are_additive(self, two_models):
        m1, m2, d1, _ = two_models
        g = gcr_partition(m1.structure, m2.structure)
        assert verify_measure_additivity(g, m1.structure, d1)
        assert verify_measure_additivity(g, m2.structure, d1)

    def test_composed_assigner_matches_predicates(self, two_models):
        """The fast-path assigner agrees with evaluating cell predicates."""
        m1, m2, d1, _ = two_models
        g = gcr_partition(m1.structure, m2.structure)
        assigned = g.assigner(d1)
        for cell_idx in np.unique(assigned)[:10]:
            cell = g.cells[cell_idx]
            mask = d1.predicate_mask(cell)
            assert np.array_equal(np.flatnonzero(assigned == cell_idx),
                                  np.flatnonzero(mask))

    def test_mismatched_kinds_raise(self, two_models):
        m1, _, _, _ = two_models
        with pytest.raises(IncompatibleModelsError):
            gcr(m1.structure, lits({0}))


class TestGcrOfMinedLitsModels:
    def test_counts_against_other_dataset(self, basket_pair):
        d1, d2 = basket_pair
        m1 = LitsModel.mine(d1, 0.05)
        m2 = LitsModel.mine(d2, 0.05)
        g = gcr(m1.structure, m2.structure)
        counts = g.counts(d2)
        # Every itemset of m1 gets a (possibly zero) measure from d2.
        assert len(counts) == len(g.itemsets)
        assert (counts >= 0).all()
        assert (counts <= len(d2)).all()
