"""Tests for the deviation engine (delta_1, delta, and the result object)."""

from __future__ import annotations

import pytest

from repro.core.aggregate import MAX, SUM
from repro.core.deviation import deviation, deviation_over_structure
from repro.core.difference import ABSOLUTE, SCALED
from repro.core.dtree_model import DtModel
from repro.core.lits import LitsModel
from repro.core.model import LitsStructure
from repro.mining.tree.builder import TreeParams


class TestLitsDeviation:
    def test_self_deviation_is_zero(self, basket_pair):
        d1, _ = basket_pair
        m = LitsModel.mine(d1, 0.05)
        assert deviation(m, m, d1, d1).value == pytest.approx(0.0)

    def test_symmetry_under_fa(self, basket_pair):
        d1, d2 = basket_pair
        m1 = LitsModel.mine(d1, 0.05)
        m2 = LitsModel.mine(d2, 0.05)
        forward = deviation(m1, m2, d1, d2).value
        backward = deviation(m2, m1, d2, d1).value
        assert forward == pytest.approx(backward)

    def test_nonnegative(self, basket_pair):
        d1, d2 = basket_pair
        m1 = LitsModel.mine(d1, 0.05)
        m2 = LitsModel.mine(d2, 0.05)
        for f in (ABSOLUTE, SCALED):
            for g in (SUM, MAX):
                assert deviation(m1, m2, d1, d2, f=f, g=g).value >= 0.0

    def test_max_bounded_by_sum(self, basket_pair):
        d1, d2 = basket_pair
        m1 = LitsModel.mine(d1, 0.05)
        m2 = LitsModel.mine(d2, 0.05)
        d_sum = deviation(m1, m2, d1, d2, g=SUM).value
        d_max = deviation(m1, m2, d1, d2, g=MAX).value
        assert d_max <= d_sum + 1e-12

    def test_identical_structure_fast_path_matches_scan(self, basket_pair):
        """When both models share a structure, stored supports suffice."""
        d1, d2 = basket_pair
        m1 = LitsModel.mine(d1, 0.05)
        # Model over d2 with the same structural component as m1: measure
        # m1's itemsets against d2.
        structure = m1.structure
        sels = structure.selectivities(d2)
        m2 = LitsModel(
            dict(zip(structure.itemsets, sels)), 0.05, d2.n_items
        )
        fast = deviation(m1, m2, d1, d2).value
        slow = deviation_over_structure(structure, d1, d2).value
        assert fast == pytest.approx(slow, abs=1e-9)

    def test_result_breakdown_consistent(self, basket_pair):
        d1, d2 = basket_pair
        m1 = LitsModel.mine(d1, 0.05)
        m2 = LitsModel.mine(d2, 0.05)
        result = deviation(m1, m2, d1, d2)
        assert result.value == pytest.approx(result.per_region.sum())
        assert len(result.regions) == len(result.per_region)
        contributions = result.region_deviations()
        assert sum(rd.value for rd in contributions) == pytest.approx(result.value)

    def test_top_regions_sorted(self, basket_pair):
        d1, d2 = basket_pair
        m1 = LitsModel.mine(d1, 0.05)
        m2 = LitsModel.mine(d2, 0.05)
        tops = deviation(m1, m2, d1, d2).top_regions(5)
        values = [t.value for t in tops]
        assert values == sorted(values, reverse=True)

    def test_float_conversion(self, basket_pair):
        d1, d2 = basket_pair
        m1 = LitsModel.mine(d1, 0.05)
        m2 = LitsModel.mine(d2, 0.05)
        result = deviation(m1, m2, d1, d2)
        assert float(result) == result.value


class TestDtDeviation:
    @pytest.fixture
    def models(self, classify_pair):
        d1, d2 = classify_pair
        params = TreeParams(max_depth=4, min_leaf=30)
        return DtModel.fit(d1, params), DtModel.fit(d2, params), d1, d2

    def test_self_deviation_is_zero(self, models):
        m1, _, d1, _ = models
        assert deviation(m1, m1, d1, d1).value == pytest.approx(0.0)

    def test_symmetry_under_fa(self, models):
        m1, m2, d1, d2 = models
        assert deviation(m1, m2, d1, d2).value == pytest.approx(
            deviation(m2, m1, d2, d1).value
        )

    def test_sum_deviation_bounded_by_two(self, models):
        """With f_a/g_sum over a partition x classes, delta <= 2."""
        m1, m2, d1, d2 = models
        assert deviation(m1, m2, d1, d2).value <= 2.0 + 1e-9

    def test_same_process_smaller_than_cross_process(self, classify_pair, rng):
        """Deviation separates same- from different-process dataset pairs."""
        from repro.data.quest_classify import generate_classification

        d1, d2 = classify_pair
        d1b = generate_classification(1_200, function=1, seed=99)
        params = TreeParams(max_depth=4, min_leaf=30)
        m1 = DtModel.fit(d1, params)
        m1b = DtModel.fit(d1b, params)
        m2 = DtModel.fit(d2, params)
        same = deviation(m1, m1b, d1, d1b).value
        cross = deviation(m1, m2, d1, d2).value
        assert same < cross

    def test_deviation_over_structure_equals_gcr_when_identical(self, models):
        m1, _, d1, d2 = models
        via_structure = deviation_over_structure(m1.structure, d1, d2).value
        via_models = deviation(m1, m1, d1, d2).value
        assert via_structure == pytest.approx(via_models)


class TestDeviationOverStructure:
    def test_manual_counts(self, small_transactions):
        structure = LitsStructure([frozenset({0}), frozenset({1})])
        result = deviation_over_structure(
            structure, small_transactions, small_transactions
        )
        assert result.value == 0.0
        assert result.n1 == result.n2 == len(small_transactions)
        # supports: item 0 in 6/10, item 1 in 6/10.
        assert result.selectivities1.tolist() == [0.6, 0.6]
