"""Tests for the snapshot ChangeMonitor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lits import LitsModel
from repro.core.monitor import ChangeMonitor
from repro.data.quest_basket import build_pattern_pool, generate_basket
from repro.errors import InvalidParameterError, NotFittedError


def builder(dataset):
    return LitsModel.mine(dataset, 0.05, max_len=2)


@pytest.fixture(scope="module")
def snapshots():
    """Reference + two quiet snapshots + one drifted snapshot."""
    rng = np.random.default_rng(71)
    pool = build_pattern_pool(rng, n_items=60, n_patterns=40, avg_pattern_len=3)

    def quiet():
        return generate_basket(
            700, n_items=60, avg_transaction_len=5, rng=rng, pool=pool
        )

    drifted = generate_basket(
        700, n_items=60, avg_transaction_len=5, n_patterns=40,
        avg_pattern_len=5, rng=rng,
    )
    return quiet(), quiet(), quiet(), drifted


class TestChangeMonitor:
    def test_quiet_then_drift(self, snapshots):
        # n_boot=40: the quiet snapshots sit around the null's 70th
        # percentile, so the coarse 20-replicate grid can tick over the
        # 95% threshold on an unlucky draw; 40 replicates keep the
        # verdicts stable.
        reference, quiet_1, quiet_2, drifted = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=40, rng=np.random.default_rng(1)
        ).fit(reference)

        assert not monitor.observe(quiet_1).drifted
        assert not monitor.observe(quiet_2).drifted
        alarm = monitor.observe(drifted)
        assert alarm.drifted
        assert monitor.drift_points() == [alarm.index]

    def test_history_and_indices(self, snapshots):
        reference, quiet_1, quiet_2, _ = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=10, rng=np.random.default_rng(2)
        ).fit(reference)
        monitor.observe(quiet_1)
        monitor.observe(quiet_2)
        assert [obs.index for obs in monitor.history] == [1, 2]
        assert all(obs.reference_index == 0 for obs in monitor.history)

    def test_reset_on_drift_policy(self, snapshots):
        reference, quiet_1, _, drifted = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=20, policy="reset_on_drift",
            rng=np.random.default_rng(3),
        ).fit(reference)
        alarm = monitor.observe(drifted)
        assert alarm.drifted
        # Reference moved: the next snapshot is compared to the drifted one.
        follow_up = monitor.observe(quiet_1)
        assert follow_up.reference_index == alarm.index

    def test_fixed_policy_keeps_reference(self, snapshots):
        reference, _, _, drifted = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=20, policy="fixed", rng=np.random.default_rng(4)
        ).fit(reference)
        alarm = monitor.observe(drifted)
        assert alarm.reference_index == 0
        assert monitor.observe(drifted).reference_index == 0

    def test_observe_before_fit_rejected(self, snapshots):
        monitor = ChangeMonitor(
            builder, n_boot=5, rng=np.random.default_rng(0)
        )
        with pytest.raises(NotFittedError):
            monitor.observe(snapshots[0])

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            ChangeMonitor(builder, policy="nonsense")
        with pytest.raises(InvalidParameterError):
            ChangeMonitor(builder, threshold=150.0)
        with pytest.raises(InvalidParameterError):
            ChangeMonitor(builder, n_boot=-1)
        with pytest.raises(InvalidParameterError):
            ChangeMonitor(builder, n_boot=0)  # needs delta_threshold

    def test_describe(self, snapshots):
        reference, quiet_1, _, _ = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=5, rng=np.random.default_rng(5)
        ).fit(reference)
        text = monitor.observe(quiet_1).describe()
        assert "snapshot 1" in text
        assert "delta=" in text


class TestDriftPointsEdges:
    """drift_points() must be stable under interleaving and loud when
    the monitor was never fitted."""

    def test_unfitted_monitor_raises_instead_of_empty_list(self):
        monitor = ChangeMonitor(
            builder, n_boot=5, rng=np.random.default_rng(0)
        )
        with pytest.raises(NotFittedError):
            monitor.drift_points()

    def test_observe_many_before_fit_rejected(self, snapshots):
        monitor = ChangeMonitor(
            builder, n_boot=5, rng=np.random.default_rng(0)
        )
        with pytest.raises(NotFittedError):
            monitor.observe_many([snapshots[1]])

    def test_fitted_but_quiet_monitor_returns_empty(self, snapshots):
        reference, quiet_1, _, _ = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=10, rng=np.random.default_rng(6)
        ).fit(reference)
        monitor.observe(quiet_1)
        assert monitor.drift_points() == []

    def test_interleaved_observe_and_observe_many(self, snapshots):
        """Indices and drift points are identical whether snapshots come
        one at a time, batched, or interleaved."""
        reference, quiet_1, quiet_2, drifted = snapshots
        sequence = [quiet_1, quiet_2, drifted, quiet_1, drifted]

        sequential = ChangeMonitor(
            builder, n_boot=20, rng=np.random.default_rng(7)
        ).fit(reference)
        for snapshot in sequence:
            sequential.observe(snapshot)

        interleaved = ChangeMonitor(
            builder, n_boot=20, rng=np.random.default_rng(7)
        ).fit(reference)
        interleaved.observe(sequence[0])
        interleaved.observe_many(sequence[1:3])
        interleaved.observe(sequence[3])
        interleaved.observe_many(sequence[4:])

        assert [o.index for o in interleaved.history] == [1, 2, 3, 4, 5]
        assert interleaved.drift_points() == sequential.drift_points()
        assert interleaved.drift_points() == sorted(interleaved.drift_points())
        assert all(
            o.reference_index == 0 for o in interleaved.history
        )  # fixed policy: interleaving never moves the reference

    def test_single_element_observe_many_matches_observe(self, snapshots):
        reference, quiet_1, _, _ = snapshots
        a = ChangeMonitor(
            builder, n_boot=10, rng=np.random.default_rng(8)
        ).fit(reference)
        b = ChangeMonitor(
            builder, n_boot=10, rng=np.random.default_rng(8)
        ).fit(reference)
        obs_a = a.observe(quiet_1)
        [obs_b] = b.observe_many([quiet_1])
        assert obs_a == obs_b


class TestPrecomputedAndCheapMode:
    def test_observe_precomputed_before_fit_rejected(self, snapshots):
        monitor = ChangeMonitor(
            builder, n_boot=5, rng=np.random.default_rng(0)
        )
        with pytest.raises(NotFittedError):
            monitor.observe_precomputed(snapshots[0], 1.0)

    def test_observe_precomputed_records_given_delta(self, snapshots):
        reference, quiet_1, _, _ = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=0, delta_threshold=5.0
        ).fit(reference)
        observation = monitor.observe_precomputed(quiet_1, 1.25)
        assert observation.deviation == 1.25
        assert not observation.drifted
        assert monitor.observe_precomputed(quiet_1, 7.5).drifted
        assert monitor.drift_points() == [2]

    def test_cheap_mode_significance_degenerates(self, snapshots):
        reference, quiet_1, _, _ = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=0, delta_threshold=5.0
        ).fit(reference)
        assert monitor.observe_precomputed(quiet_1, 0.5).significance == 0.0
        assert monitor.observe_precomputed(quiet_1, 9.5).significance == 100.0

    def test_cheap_mode_observe_still_computes_delta(self, snapshots):
        """n_boot=0 works for plain observe() too: the deviation is
        computed as usual, only the bootstrap is skipped."""
        reference, quiet_1, _, drifted = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=0, delta_threshold=3.0
        ).fit(reference)
        quiet_obs = monitor.observe(quiet_1)
        drift_obs = monitor.observe(drifted)
        assert quiet_obs.deviation < drift_obs.deviation
        assert not quiet_obs.drifted
        assert drift_obs.drifted

    def test_precomputed_reset_on_drift_uses_given_model(self, snapshots):
        reference, quiet_1, _, drifted = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=0, delta_threshold=3.0, policy="reset_on_drift"
        ).fit(reference)
        drifted_model = builder(drifted)
        observation = monitor.observe_precomputed(
            drifted, 10.0, model=drifted_model
        )
        assert observation.drifted
        assert monitor._reference_model is drifted_model
        assert monitor._reference_index == observation.index


class TestUnseededWarning:
    def test_unseeded_bootstrap_monitor_warns(self):
        with pytest.warns(UserWarning, match="not reproducible"):
            ChangeMonitor(builder, n_boot=5)

    def test_seeded_or_cheap_monitors_stay_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ChangeMonitor(builder, n_boot=5, rng=np.random.default_rng(1))
            ChangeMonitor(builder, n_boot=0, delta_threshold=1.0)

    def test_resample_plan_with_refit_rejected(self, snapshots):
        """A precompiled fixed-structure plan contradicts the refit
        null; the monitor raises instead of silently using it."""
        from repro.core.gcr import gcr
        from repro.stats.resample_plan import compile_resample_plan

        reference, quiet_1, _, _ = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=5, refit_models=True,
            rng=np.random.default_rng(2),
        ).fit(reference)
        model = builder(quiet_1)
        plan = compile_resample_plan(
            gcr(monitor._reference_model.structure, model.structure),
            reference, quiet_1,
        )
        with pytest.raises(InvalidParameterError, match="refit_models"):
            monitor.observe_precomputed(quiet_1, 1.0, resample_plan=plan)

    def test_pooled_executor_resolved_once_and_closable(self, snapshots):
        """A backend name becomes one executor instance at construction
        (fanned bootstraps share its pool) and close() releases it."""
        reference, quiet_1, _, _ = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=6, executor="thread", n_blocks=2,
            rng=np.random.default_rng(9),
        ).fit(reference)
        first = monitor.executor
        assert hasattr(first, "map")  # resolved, not a string
        monitor.observe(quiet_1)
        assert monitor.executor is first
        assert first._pool is not None  # the bootstrap used this pool
        monitor.close()
        assert first._pool is None
        # serial monitors close as a no-op
        ChangeMonitor(
            builder, n_boot=0, delta_threshold=1.0
        ).close()
