"""Tests for the snapshot ChangeMonitor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lits import LitsModel
from repro.core.monitor import ChangeMonitor
from repro.data.quest_basket import build_pattern_pool, generate_basket
from repro.errors import InvalidParameterError, NotFittedError


def builder(dataset):
    return LitsModel.mine(dataset, 0.05, max_len=2)


@pytest.fixture(scope="module")
def snapshots():
    """Reference + two quiet snapshots + one drifted snapshot."""
    rng = np.random.default_rng(71)
    pool = build_pattern_pool(rng, n_items=60, n_patterns=40, avg_pattern_len=3)

    def quiet():
        return generate_basket(
            700, n_items=60, avg_transaction_len=5, rng=rng, pool=pool
        )

    drifted = generate_basket(
        700, n_items=60, avg_transaction_len=5, n_patterns=40,
        avg_pattern_len=5, rng=rng,
    )
    return quiet(), quiet(), quiet(), drifted


class TestChangeMonitor:
    def test_quiet_then_drift(self, snapshots):
        reference, quiet_1, quiet_2, drifted = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=20, rng=np.random.default_rng(1)
        ).fit(reference)

        assert not monitor.observe(quiet_1).drifted
        assert not monitor.observe(quiet_2).drifted
        alarm = monitor.observe(drifted)
        assert alarm.drifted
        assert monitor.drift_points() == [alarm.index]

    def test_history_and_indices(self, snapshots):
        reference, quiet_1, quiet_2, _ = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=10, rng=np.random.default_rng(2)
        ).fit(reference)
        monitor.observe(quiet_1)
        monitor.observe(quiet_2)
        assert [obs.index for obs in monitor.history] == [1, 2]
        assert all(obs.reference_index == 0 for obs in monitor.history)

    def test_reset_on_drift_policy(self, snapshots):
        reference, quiet_1, _, drifted = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=20, policy="reset_on_drift",
            rng=np.random.default_rng(3),
        ).fit(reference)
        alarm = monitor.observe(drifted)
        assert alarm.drifted
        # Reference moved: the next snapshot is compared to the drifted one.
        follow_up = monitor.observe(quiet_1)
        assert follow_up.reference_index == alarm.index

    def test_fixed_policy_keeps_reference(self, snapshots):
        reference, _, _, drifted = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=20, policy="fixed", rng=np.random.default_rng(4)
        ).fit(reference)
        alarm = monitor.observe(drifted)
        assert alarm.reference_index == 0
        assert monitor.observe(drifted).reference_index == 0

    def test_observe_before_fit_rejected(self, snapshots):
        monitor = ChangeMonitor(builder, n_boot=5)
        with pytest.raises(NotFittedError):
            monitor.observe(snapshots[0])

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            ChangeMonitor(builder, policy="nonsense")
        with pytest.raises(InvalidParameterError):
            ChangeMonitor(builder, threshold=150.0)

    def test_describe(self, snapshots):
        reference, quiet_1, _, _ = snapshots
        monitor = ChangeMonitor(
            builder, n_boot=5, rng=np.random.default_rng(5)
        ).fit(reference)
        text = monitor.observe(quiet_1).describe()
        assert "snapshot 1" in text
        assert "delta=" in text
