"""Tests for dataset embedding (delta* MDS) and deviation-based grouping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dtree_model import DtModel
from repro.core.embedding import (
    classical_mds,
    deviation_matrix,
    embed_models,
    upper_bound_matrix,
)
from repro.core.grouping import agglomerate, group_stores
from repro.core.lits import LitsModel
from repro.data.quest_basket import build_pattern_pool, generate_basket
from repro.errors import InvalidParameterError
from repro.mining.tree.builder import TreeParams


@pytest.fixture(scope="module")
def store_fleet():
    """Six stores: three from process A, three from process B."""
    rng = np.random.default_rng(55)
    pool_a = build_pattern_pool(rng, n_items=80, n_patterns=40, avg_pattern_len=3)
    pool_b = build_pattern_pool(rng, n_items=80, n_patterns=40, avg_pattern_len=5)
    datasets = []
    for pool in (pool_a, pool_a, pool_a, pool_b, pool_b, pool_b):
        datasets.append(
            generate_basket(800, n_items=80, avg_transaction_len=6,
                            rng=rng, pool=pool)
        )
    models = [LitsModel.mine(d, 0.03, max_len=2) for d in datasets]
    return models, datasets


class TestDistanceMatrices:
    def test_upper_bound_matrix_properties(self, store_fleet):
        models, _ = store_fleet
        m = upper_bound_matrix(models)
        assert m.shape == (6, 6)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 0.0)
        # Triangle inequality (Theorem 4.2) over all triples.
        for i in range(6):
            for j in range(6):
                for k in range(6):
                    assert m[i, k] <= m[i, j] + m[j, k] + 1e-9

    def test_within_process_closer_than_across(self, store_fleet):
        models, _ = store_fleet
        m = upper_bound_matrix(models)
        within = [m[i, j] for i in range(3) for j in range(3) if i < j]
        within += [m[i, j] for i in range(3, 6) for j in range(3, 6) if i < j]
        across = [m[i, j] for i in range(3) for j in range(3, 6)]
        assert max(within) < min(across)

    def test_deviation_matrix_matches_pairwise_calls(self, store_fleet):
        models, datasets = store_fleet
        from repro.core.deviation import deviation

        m = deviation_matrix(models[:3], datasets[:3])
        direct = deviation(
            models[0], models[1], datasets[0], datasets[1]
        ).value
        assert m[0, 1] == pytest.approx(direct)

    def test_size_validation(self, store_fleet):
        models, datasets = store_fleet
        with pytest.raises(InvalidParameterError):
            upper_bound_matrix(models[:1])
        with pytest.raises(InvalidParameterError):
            deviation_matrix(models[:2], datasets[:3])

    def test_empty_fleet_messages(self):
        with pytest.raises(InvalidParameterError, match="empty fleet"):
            upper_bound_matrix([])
        with pytest.raises(InvalidParameterError, match="empty fleet"):
            deviation_matrix([], [])
        with pytest.raises(InvalidParameterError, match="empty fleet"):
            embed_models([])

    def test_mixed_model_kinds_rejected(self, store_fleet):
        from repro.data.quest_classify import generate_classification
        from repro.errors import IncompatibleModelsError

        models, datasets = store_fleet
        tab = generate_classification(400, function=1, seed=3)
        dt = DtModel.fit(tab, TreeParams(max_depth=3, min_leaf=25))
        with pytest.raises(IncompatibleModelsError, match="lits-models"):
            upper_bound_matrix([models[0], dt])
        with pytest.raises(IncompatibleModelsError, match="lits-models"):
            embed_models([models[0], dt])
        with pytest.raises(IncompatibleModelsError, match="one model kind"):
            deviation_matrix([models[0], dt], [datasets[0], tab])


class TestClassicalMds:
    def test_exact_recovery_of_planar_points(self):
        points = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 4.0], [3.0, 4.0]])
        distances = np.linalg.norm(
            points[:, None, :] - points[None, :, :], axis=-1
        )
        embedded = classical_mds(distances, k=2)
        rebuilt = np.linalg.norm(
            embedded[:, None, :] - embedded[None, :, :], axis=-1
        )
        assert np.allclose(rebuilt, distances, atol=1e-8)

    def test_embedding_separates_processes(self, store_fleet):
        models, _ = store_fleet
        coords = embed_models(models, k=2)
        group_a = coords[:3].mean(axis=0)
        group_b = coords[3:].mean(axis=0)
        between = np.linalg.norm(group_a - group_b)
        spread_a = max(np.linalg.norm(c - group_a) for c in coords[:3])
        spread_b = max(np.linalg.norm(c - group_b) for c in coords[3:])
        assert between > max(spread_a, spread_b)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            classical_mds(np.zeros((3, 4)), k=1)
        with pytest.raises(InvalidParameterError):
            classical_mds(np.array([[0.0, 1.0], [2.0, 0.0]]), k=1)  # asymmetric
        with pytest.raises(InvalidParameterError):
            classical_mds(np.zeros((3, 3)), k=3)  # k too large


class TestGrouping:
    def test_recovers_the_two_processes(self, store_fleet):
        models, _ = store_fleet
        m = upper_bound_matrix(models)
        for linkage in ("single", "complete", "average"):
            grouping = agglomerate(m, n_groups=2, linkage=linkage)
            labels = grouping.labels
            assert len(set(labels[:3])) == 1, linkage
            assert len(set(labels[3:])) == 1, linkage
            assert labels[0] != labels[3], linkage

    def test_merge_history_recorded(self, store_fleet):
        models, _ = store_fleet
        m = upper_bound_matrix(models)
        grouping = agglomerate(m, n_groups=1)
        assert len(grouping.merges) == 5  # n - 1 merges to one cluster
        assert grouping.n_groups == 1

    def test_n_groups_equals_n_is_identity(self, store_fleet):
        models, _ = store_fleet
        m = upper_bound_matrix(models)
        grouping = agglomerate(m, n_groups=6)
        assert grouping.n_groups == 6
        assert not grouping.merges

    def test_group_stores_with_names(self, store_fleet):
        models, _ = store_fleet
        m = upper_bound_matrix(models)
        names = [f"store-{i}" for i in range(6)]
        groups = group_stores(m, 2, names=names)
        assert sorted(sum(groups.values(), [])) == sorted(names)
        member_sets = sorted(tuple(sorted(v)) for v in groups.values())
        assert member_sets == [
            ("store-0", "store-1", "store-2"),
            ("store-3", "store-4", "store-5"),
        ]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            agglomerate(np.zeros((3, 3)), n_groups=0)
        with pytest.raises(InvalidParameterError):
            agglomerate(np.zeros((3, 3)), n_groups=2, linkage="median")
        with pytest.raises(InvalidParameterError):
            agglomerate(np.zeros((3, 4)), n_groups=2)

    def test_rejects_empty_and_asymmetric_matrices(self):
        with pytest.raises(InvalidParameterError, match="empty fleet"):
            agglomerate(np.zeros((0, 0)), n_groups=1)
        asymmetric = np.array([[0.0, 1.0, 2.0],
                               [1.0, 0.0, 3.0],
                               [2.0, 9.0, 0.0]])
        with pytest.raises(InvalidParameterError, match="symmetric"):
            agglomerate(asymmetric, n_groups=2)
        with pytest.raises(InvalidParameterError, match="symmetric"):
            group_stores(asymmetric, 2)

    def test_group_stores_names_must_align(self):
        m = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(InvalidParameterError, match="align"):
            group_stores(m, 1, names=["only-one"])


class TestDtModelsInMatrices:
    def test_deviation_matrix_for_trees(self):
        from repro.data.quest_classify import generate_classification

        datasets = [
            generate_classification(800, function=f, seed=60 + f)
            for f in (1, 1, 2)
        ]
        params = TreeParams(max_depth=4, min_leaf=25)
        models = [DtModel.fit(d, params) for d in datasets]
        m = deviation_matrix(models, datasets)
        # The two F1 datasets are closer to each other than to the F2 one.
        assert m[0, 1] < m[0, 2]
        assert m[0, 1] < m[1, 2]
