"""Tests for the delta* upper bound (Definition 4.1, Theorem 4.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregate import MAX, SUM
from repro.core.deviation import deviation
from repro.core.embedding import upper_bound_matrix
from repro.core.lits import LitsModel
from repro.core.upper_bound import upper_bound_deviation
from repro.data.quest_basket import generate_basket
from repro.errors import IncompatibleModelsError, InvalidParameterError


@pytest.fixture(scope="module")
def three_models():
    """Three mined models (and datasets) from different processes."""
    out = []
    for seed, plen in ((1, 3), (2, 4), (3, 3)):
        d = generate_basket(
            600, n_items=30, avg_transaction_len=5, n_patterns=30,
            avg_pattern_len=plen, seed=seed,
        )
        out.append((LitsModel.mine(d, 0.05), d))
    return out


class TestUpperBoundProperty:
    def test_majorises_true_deviation_sum(self, three_models):
        (m1, d1), (m2, d2), _ = three_models
        ub = upper_bound_deviation(m1, m2, g=SUM).value
        true = deviation(m1, m2, d1, d2, g=SUM).value
        assert ub >= true - 1e-9

    def test_majorises_true_deviation_max(self, three_models):
        (m1, d1), (m2, d2), _ = three_models
        ub = upper_bound_deviation(m1, m2, g=MAX).value
        true = deviation(m1, m2, d1, d2, g=MAX).value
        assert ub >= true - 1e-9

    def test_triangle_inequality(self, three_models):
        (m1, _), (m2, _), (m3, _) = three_models
        for g in (SUM, MAX):
            d12 = upper_bound_deviation(m1, m2, g=g).value
            d23 = upper_bound_deviation(m2, m3, g=g).value
            d13 = upper_bound_deviation(m1, m3, g=g).value
            assert d13 <= d12 + d23 + 1e-9

    def test_symmetry(self, three_models):
        (m1, _), (m2, _), _ = three_models
        assert upper_bound_deviation(m1, m2).value == pytest.approx(
            upper_bound_deviation(m2, m1).value
        )

    def test_self_bound_is_zero(self, three_models):
        (m1, _), _, _ = three_models
        assert upper_bound_deviation(m1, m1).value == 0.0

    def test_no_dataset_needed(self, three_models):
        """delta* is computable from models alone -- the call signature proves
        it, but also check the breakdown covers exactly the union."""
        (m1, _), (m2, _), _ = three_models
        ub = upper_bound_deviation(m1, m2)
        assert set(ub.itemsets) == set(m1.itemsets) | set(m2.itemsets)
        assert len(ub.per_itemset) == len(ub.itemsets)

    def test_rejects_non_lits_models(self, three_models):
        (m1, _), _, _ = three_models
        with pytest.raises(IncompatibleModelsError, match="lits-models"):
            upper_bound_deviation(m1, object())

    def test_exact_when_structures_identical(self, three_models):
        """Both-frequent itemsets contribute the exact f_a term."""
        (m1, d1), _, _ = three_models
        sels = m1.structure.selectivities(d1)
        m1_copy = LitsModel(
            dict(zip(m1.structure.itemsets, sels)), 0.05, d1.n_items
        )
        ub = upper_bound_deviation(m1, m1_copy, g=SUM).value
        true = deviation(m1, m1_copy, d1, d1, g=SUM).value
        assert ub == pytest.approx(true, abs=1e-9)


# --------------------------------------------------------------------- #
# Property suite: delta* fleet matrices over random model fleets
# --------------------------------------------------------------------- #

N_ITEMS = 6
MIN_SUPPORT = 0.1


@st.composite
def lits_models(draw) -> LitsModel:
    """A random lits-model: itemsets over 6 items with supports >= ms."""
    universe = [
        frozenset(s)
        for s in draw(
            st.lists(
                st.sets(st.integers(0, N_ITEMS - 1), min_size=1, max_size=3),
                min_size=0, max_size=8,
            )
        )
    ]
    supports = {
        s: draw(st.floats(MIN_SUPPORT, 1.0, allow_nan=False))
        for s in universe
    }
    return LitsModel(supports, MIN_SUPPORT, N_ITEMS)


@st.composite
def model_fleets(draw, min_size: int = 2, max_size: int = 5):
    n = draw(st.integers(min_size, max_size))
    return [draw(lits_models()) for _ in range(n)]


class TestUpperBoundMatrixProperties:
    @settings(max_examples=50, deadline=None)
    @given(model_fleets())
    def test_matrix_is_symmetric_with_zero_diagonal(self, models):
        for g in (SUM, MAX):
            m = upper_bound_matrix(models, g=g)
            assert m.shape == (len(models), len(models))
            assert np.array_equal(m, m.T)
            assert np.allclose(np.diag(m), 0.0)
            assert (m >= 0.0).all()

    @settings(max_examples=50, deadline=None)
    @given(model_fleets(min_size=3))
    def test_triangle_inequality_over_all_triples(self, models):
        """Theorem 4.2: delta* is a pseudo-metric over model fleets."""
        for g in (SUM, MAX):
            m = upper_bound_matrix(models, g=g)
            n = len(models)
            # vectorised check of m[i,k] <= m[i,j] + m[j,k] for all triples
            via = m[:, :, None] + m[None, :, :]  # (i, j, k)
            assert (m[:, None, :] <= via + 1e-9).all(), (g.name, n)


class TestUpperBoundMatrixValidation:
    def test_empty_fleet_message(self):
        with pytest.raises(InvalidParameterError, match="empty fleet"):
            upper_bound_matrix([])

    def test_single_model_message(self):
        d = generate_basket(60, n_items=10, avg_transaction_len=3, seed=5)
        with pytest.raises(InvalidParameterError, match="at least two"):
            upper_bound_matrix([LitsModel.mine(d, 0.2)])

    def test_non_lits_model_named(self):
        d = generate_basket(60, n_items=10, avg_transaction_len=3, seed=5)
        m = LitsModel.mine(d, 0.2)
        with pytest.raises(IncompatibleModelsError, match="model 1 is a int"):
            upper_bound_matrix([m, 3])
