"""Tests for the delta* upper bound (Definition 4.1, Theorem 4.2)."""

from __future__ import annotations

import pytest

from repro.core.aggregate import MAX, SUM
from repro.core.deviation import deviation
from repro.core.lits import LitsModel
from repro.core.upper_bound import upper_bound_deviation
from repro.data.quest_basket import generate_basket


@pytest.fixture(scope="module")
def three_models():
    """Three mined models (and datasets) from different processes."""
    out = []
    for seed, plen in ((1, 3), (2, 4), (3, 3)):
        d = generate_basket(
            600, n_items=30, avg_transaction_len=5, n_patterns=30,
            avg_pattern_len=plen, seed=seed,
        )
        out.append((LitsModel.mine(d, 0.05), d))
    return out


class TestUpperBoundProperty:
    def test_majorises_true_deviation_sum(self, three_models):
        (m1, d1), (m2, d2), _ = three_models
        ub = upper_bound_deviation(m1, m2, g=SUM).value
        true = deviation(m1, m2, d1, d2, g=SUM).value
        assert ub >= true - 1e-9

    def test_majorises_true_deviation_max(self, three_models):
        (m1, d1), (m2, d2), _ = three_models
        ub = upper_bound_deviation(m1, m2, g=MAX).value
        true = deviation(m1, m2, d1, d2, g=MAX).value
        assert ub >= true - 1e-9

    def test_triangle_inequality(self, three_models):
        (m1, _), (m2, _), (m3, _) = three_models
        for g in (SUM, MAX):
            d12 = upper_bound_deviation(m1, m2, g=g).value
            d23 = upper_bound_deviation(m2, m3, g=g).value
            d13 = upper_bound_deviation(m1, m3, g=g).value
            assert d13 <= d12 + d23 + 1e-9

    def test_symmetry(self, three_models):
        (m1, _), (m2, _), _ = three_models
        assert upper_bound_deviation(m1, m2).value == pytest.approx(
            upper_bound_deviation(m2, m1).value
        )

    def test_self_bound_is_zero(self, three_models):
        (m1, _), _, _ = three_models
        assert upper_bound_deviation(m1, m1).value == 0.0

    def test_no_dataset_needed(self, three_models):
        """delta* is computable from models alone -- the call signature proves
        it, but also check the breakdown covers exactly the union."""
        (m1, _), (m2, _), _ = three_models
        ub = upper_bound_deviation(m1, m2)
        assert set(ub.itemsets) == set(m1.itemsets) | set(m2.itemsets)
        assert len(ub.per_itemset) == len(ub.itemsets)

    def test_exact_when_structures_identical(self, three_models):
        """Both-frequent itemsets contribute the exact f_a term."""
        (m1, d1), _, _ = three_models
        sels = m1.structure.selectivities(d1)
        m1_copy = LitsModel(
            dict(zip(m1.structure.itemsets, sels)), 0.05, d1.n_items
        )
        ub = upper_bound_deviation(m1, m1_copy, g=SUM).value
        true = deviation(m1, m1_copy, d1, d1, g=SUM).value
        assert ub == pytest.approx(true, abs=1e-9)
