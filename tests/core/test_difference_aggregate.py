"""Tests for difference functions (f_a, f_s, chi-squared) and aggregates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregate import AGGREGATE_FUNCTIONS, MAX, SUM
from repro.core.difference import (
    ABSOLUTE,
    DIFFERENCE_FUNCTIONS,
    SCALED,
    chi_squared_difference,
)


class TestAbsoluteDifference:
    def test_definition(self):
        out = ABSOLUTE(np.array([50]), np.array([55]), 100, 100)
        assert out[0] == pytest.approx(0.05)

    def test_different_sizes_normalised(self):
        out = ABSOLUTE(np.array([50]), np.array([110]), 100, 200)
        assert out[0] == pytest.approx(abs(0.5 - 0.55))

    def test_symmetry(self):
        a = ABSOLUTE(np.array([30]), np.array([70]), 100, 200)
        b = ABSOLUTE(np.array([70]), np.array([30]), 200, 100)
        assert a[0] == pytest.approx(b[0])

    def test_zero_for_equal_selectivities(self):
        out = ABSOLUTE(np.array([10, 0]), np.array([20, 0]), 100, 200)
        assert out.tolist() == [0.0, 0.0]

    def test_empty_dataset_guard(self):
        out = ABSOLUTE(np.array([0]), np.array([5]), 0, 100)
        assert out[0] == pytest.approx(0.05)


class TestScaledDifference:
    def test_promotes_small_regions(self):
        """Section 3.3.2: 0% -> 5% is more significant than 50% -> 55%."""
        big = SCALED(np.array([50]), np.array([55]), 100, 100)[0]
        small = SCALED(np.array([0]), np.array([5]), 100, 100)[0]
        assert small > big
        assert small == pytest.approx(2.0)  # |0-.05| / (.025)

    def test_zero_when_both_absent(self):
        out = SCALED(np.array([0]), np.array([0]), 100, 100)
        assert out[0] == 0.0

    def test_matches_formula(self):
        s1, s2 = 0.5, 0.55
        out = SCALED(np.array([50]), np.array([55]), 100, 100)[0]
        assert out == pytest.approx(abs(s1 - s2) / ((s1 + s2) / 2))


class TestChiSquaredDifference:
    def test_matches_textbook_cell_formula(self):
        f = chi_squared_difference(c=0.5)
        # E = sigma1 * |D2|, O = sigma2 * |D2|; term = (O - E)^2 / E.
        nu1, nu2, n1, n2 = 30, 45, 100, 150
        s1, s2 = nu1 / n1, nu2 / n2
        expected = n2 * (s1 - s2) ** 2 / s1
        assert f(np.array([nu1]), np.array([nu2]), n1, n2)[0] == pytest.approx(
            expected
        )

    def test_constant_for_empty_expected_cell(self):
        f = chi_squared_difference(c=0.25)
        assert f(np.array([0]), np.array([10]), 100, 100)[0] == 0.25

    def test_zero_when_observed_matches_expected(self):
        f = chi_squared_difference()
        assert f(np.array([40]), np.array([40]), 100, 100)[0] == pytest.approx(0.0)


class TestAggregates:
    def test_sum_and_max(self):
        values = np.array([0.1, 0.4, 0.2])
        assert SUM(values) == pytest.approx(0.7)
        assert MAX(values) == pytest.approx(0.4)

    def test_empty_input_is_zero(self):
        assert SUM(np.array([])) == 0.0
        assert MAX(np.array([])) == 0.0

    def test_registries(self):
        assert set(DIFFERENCE_FUNCTIONS) == {"f_a", "f_s"}
        assert set(AGGREGATE_FUNCTIONS) == {"g_sum", "g_max"}
        assert DIFFERENCE_FUNCTIONS["f_a"] is ABSOLUTE
        assert AGGREGATE_FUNCTIONS["g_max"] is MAX
