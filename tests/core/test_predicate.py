"""Unit tests for the predicate algebra (intervals, value sets, conjunctions)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.predicate import (
    Conjunction,
    Interval,
    TRUE,
    ValueSet,
    interval_constraint,
    value_constraint,
)
from repro.errors import InvalidParameterError


class TestInterval:
    def test_universal_interval_contains_everything(self):
        i = Interval()
        assert i.is_universal
        assert i.contains(-1e300)
        assert i.contains(0.0)
        assert i.contains(1e300)

    def test_half_open_semantics(self):
        i = Interval(10, 20)
        assert i.contains(10)
        assert not i.contains(20)
        assert i.contains(19.999)
        assert not i.contains(9.999)

    def test_intersection_overlapping(self):
        a = Interval(0, 10)
        b = Interval(5, 15)
        c = a.intersect(b)
        assert (c.lo, c.hi) == (5, 10)

    def test_intersection_disjoint_is_empty(self):
        assert Interval(0, 5).intersect(Interval(5, 10)).is_empty
        assert Interval(0, 5).intersect(Interval(7, 10)).is_empty

    def test_empty_interval_detected(self):
        assert Interval(5, 5).is_empty
        assert Interval(6, 5).is_empty
        assert not Interval(5, 6).is_empty

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 8))
        assert Interval(0, 10).contains_interval(Interval(0, 10))
        assert not Interval(0, 10).contains_interval(Interval(2, 12))
        # The empty interval is a subset of anything.
        assert Interval(0, 1).contains_interval(Interval(5, 5))

    def test_mask(self):
        col = np.array([1.0, 5.0, 10.0, 15.0])
        mask = Interval(5, 15).mask(col)
        assert mask.tolist() == [False, True, True, False]

    def test_mask_unbounded_sides(self):
        col = np.array([-5.0, 0.0, 5.0])
        assert Interval(hi=0).mask(col).tolist() == [True, False, False]
        assert Interval(lo=0).mask(col).tolist() == [False, True, True]

    def test_nan_bounds_rejected(self):
        with pytest.raises(InvalidParameterError):
            Interval(math.nan, 1.0)

    def test_describe(self):
        assert "age" in Interval(0, 30).describe("age")
        assert Interval().describe("x") == "x: any"


class TestValueSet:
    def test_membership(self):
        vs = ValueSet([1, 2, 3])
        assert vs.contains(2)
        assert not vs.contains(4)
        assert not vs.contains(2.5)

    def test_intersection(self):
        a = ValueSet([1, 2, 3])
        b = ValueSet([2, 3, 4])
        assert a.intersect(b).values == frozenset({2, 3})

    def test_empty(self):
        assert ValueSet([]).is_empty
        assert ValueSet([1]).intersect(ValueSet([2])).is_empty

    def test_mask(self):
        col = np.array([1.0, 2.0, 3.0, 4.0])
        assert ValueSet([2, 4]).mask(col).tolist() == [False, True, False, True]

    def test_mask_empty_set(self):
        col = np.array([1.0, 2.0])
        assert ValueSet([]).mask(col).tolist() == [False, False]

    def test_contains_set(self):
        assert ValueSet([1, 2, 3]).contains_set(ValueSet([1, 2]))
        assert not ValueSet([1, 2]).contains_set(ValueSet([1, 3]))


class TestConjunction:
    def test_true_is_universal(self):
        assert TRUE.is_universal
        assert not TRUE.is_empty

    def test_universal_constraints_dropped(self):
        c = Conjunction({"x": Interval()})
        assert c.is_universal
        assert c == TRUE

    def test_intersect_merges_attributes(self):
        a = interval_constraint("age", hi=30)
        b = interval_constraint("salary", lo=100_000)
        c = a.intersect(b)
        assert set(c.constraints) == {"age", "salary"}

    def test_intersect_same_attribute_narrows(self):
        a = interval_constraint("age", 0, 50)
        b = interval_constraint("age", 30, 100)
        c = a.intersect(b)
        constraint = c.constraints["age"]
        assert (constraint.lo, constraint.hi) == (30, 50)

    def test_intersect_to_empty(self):
        a = interval_constraint("age", hi=30)
        b = interval_constraint("age", lo=30)
        assert a.intersect(b).is_empty

    def test_mixed_kind_intersection_rejected(self):
        a = interval_constraint("x", 0, 1)
        b = value_constraint("x", [1, 2])
        with pytest.raises(InvalidParameterError):
            a.intersect(b)

    def test_hash_equality_order_independent(self):
        a = Conjunction({"x": Interval(0, 1), "y": ValueSet([1])})
        b = Conjunction({"y": ValueSet([1]), "x": Interval(0, 1)})
        assert a == b
        assert hash(a) == hash(b)

    def test_contains_point(self):
        c = interval_constraint("age", 20, 30).intersect(
            value_constraint("elevel", [1, 2])
        )
        assert c.contains_point({"age": 25, "elevel": 1})
        assert not c.contains_point({"age": 35, "elevel": 1})
        assert not c.contains_point({"age": 25, "elevel": 3})
        assert not c.contains_point({"age": 25})  # missing attribute

    def test_contains_conjunction(self):
        outer = interval_constraint("age", 0, 50)
        inner = interval_constraint("age", 10, 20)
        assert outer.contains_conjunction(inner)
        assert not inner.contains_conjunction(outer)
        # Unconstrained attribute in other: not contained.
        other = interval_constraint("salary", 0, 10)
        assert not outer.contains_conjunction(other)

    def test_mask_over_columns(self):
        cols = {"age": np.array([10.0, 25.0, 40.0])}
        mask = interval_constraint("age", 20, 30).mask(cols, 3)
        assert mask.tolist() == [False, True, False]

    def test_mask_unknown_attribute_raises(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            interval_constraint("ghost", 0, 1).mask({"age": np.zeros(2)}, 2)

    def test_describe_sorted_and_readable(self):
        c = interval_constraint("b", 0, 1).intersect(value_constraint("a", [3]))
        text = c.describe()
        assert text.index("a in") < text.index("b")
        assert TRUE.describe() == "true"
