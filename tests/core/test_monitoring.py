"""Tests for change monitoring: ME and chi-squared as FOCUS instantiations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dtree_model import DtModel
from repro.core.monitoring import (
    chi_squared_statistic,
    misclassification_error,
    misclassification_error_via_focus,
    predicted_dataset,
)
from repro.data.quest_classify import generate_classification
from repro.mining.tree.builder import TreeParams


@pytest.fixture(scope="module")
def fitted():
    d1 = generate_classification(1_500, function=1, seed=5)
    d2 = generate_classification(1_500, function=2, seed=6)
    model = DtModel.fit(d1, TreeParams(max_depth=5, min_leaf=30))
    return model, d1, d2


class TestPredictedDataset:
    def test_labels_replaced_by_predictions(self, fitted):
        model, _, d2 = fitted
        predicted = predicted_dataset(model, d2)
        assert np.array_equal(predicted.y, model.predict(d2))
        assert np.array_equal(predicted.X, d2.X)

    def test_model_never_misclassifies_its_predictions(self, fitted):
        model, _, d2 = fitted
        predicted = predicted_dataset(model, d2)
        assert misclassification_error(model, predicted) == 0.0


class TestTheorem52:
    """ME_T(D2) = 1/2 * delta_(f_a,g_sum)(<T, D2>, <T, D2^T>)."""

    def test_identity_on_cross_process_data(self, fitted):
        model, _, d2 = fitted
        direct = misclassification_error(model, d2)
        via_focus = misclassification_error_via_focus(model, d2)
        assert via_focus == pytest.approx(direct, abs=1e-12)

    def test_identity_on_training_data(self, fitted):
        model, d1, _ = fitted
        assert misclassification_error_via_focus(model, d1) == pytest.approx(
            misclassification_error(model, d1), abs=1e-12
        )

    def test_training_error_below_transfer_error(self, fitted):
        model, d1, d2 = fitted
        assert misclassification_error(model, d1) < misclassification_error(
            model, d2
        )


class TestProposition51:
    """X^2 over the tree's regions with expected from D1, observed from D2."""

    def test_matches_direct_computation(self, fitted):
        model, d1, d2 = fitted
        result = chi_squared_statistic(model, d1, d2, c=0.5)
        # Direct: sum over regions of (O - E)^2 / E with E = sigma1 * n2.
        counts1 = model.structure.counts(d1)
        counts2 = model.structure.counts(d2)
        n1, n2 = len(d1), len(d2)
        total = 0.0
        for nu1, nu2 in zip(counts1, counts2):
            if nu1 == 0:
                total += 0.5
                continue
            e = (nu1 / n1) * n2
            o = nu2
            total += (o - e) ** 2 / e
        assert result.value == pytest.approx(total, rel=1e-9)

    def test_zero_statistic_for_identical_data(self, fitted):
        model, d1, _ = fitted
        result = chi_squared_statistic(model, d1, d1, c=0.5)
        # Only empty-expected cells contribute (the constant c each).
        empty_cells = int((model.structure.counts(d1) == 0).sum())
        assert result.value == pytest.approx(0.5 * empty_cells)

    def test_cross_process_statistic_is_large(self, fitted):
        model, d1, d2 = fitted
        same = chi_squared_statistic(model, d1, d1).value
        cross = chi_squared_statistic(model, d1, d2).value
        assert cross > same + 100  # grossly significant shift

    def test_unlabelled_dataset_rejected(self, fitted):
        from repro.errors import SchemaError

        model, d1, _ = fitted
        unlabelled_space = type(d1.space)(d1.space.attributes, ())
        unlabelled = type(d1)(unlabelled_space, d1.X)
        with pytest.raises(SchemaError):
            misclassification_error(model, unlabelled)
