"""Edge cases and failure injection across the deviation pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deviation import deviation, deviation_over_structure
from repro.core.lits import LitsModel
from repro.core.model import LitsStructure
from repro.core.upper_bound import upper_bound_deviation
from repro.data.transactions import TransactionDataset
from repro.errors import InvalidParameterError


class TestDegenerateDatasets:
    def test_deviation_against_empty_dataset(self, small_transactions):
        """An empty dataset has selectivity 0 everywhere: delta is the sum
        of the other model's supports."""
        empty = TransactionDataset([], n_items=5)
        m1 = LitsModel.mine(small_transactions, 0.3)
        m_empty = LitsModel({}, 0.3, 5)
        result = deviation(m1, m_empty, small_transactions, empty)
        expected = sum(m1.supports.values())
        assert result.value == pytest.approx(expected)

    def test_two_empty_models(self, small_transactions):
        m = LitsModel({}, 0.5, 5)
        result = deviation(m, m, small_transactions, small_transactions)
        assert result.value == 0.0
        assert len(result.regions) == 0

    def test_single_transaction_dataset(self):
        d = TransactionDataset([(0, 1)], n_items=3)
        m = LitsModel.mine(d, 0.5)
        assert deviation(m, m, d, d).value == 0.0
        assert set(m.itemsets) == {
            frozenset({0}), frozenset({1}), frozenset({0, 1}),
        }

    def test_upper_bound_with_empty_models(self):
        a = LitsModel({}, 0.5, 5)
        b = LitsModel({frozenset({0}): 0.6}, 0.5, 5)
        assert upper_bound_deviation(a, a).value == 0.0
        assert upper_bound_deviation(a, b).value == pytest.approx(0.6)


class TestModelValidation:
    def test_lits_model_rejects_bad_threshold(self):
        with pytest.raises(InvalidParameterError):
            LitsModel({}, 0.0, 5)
        with pytest.raises(InvalidParameterError):
            LitsModel({}, 1.5, 5)

    def test_lits_model_support_lookup(self, small_transactions):
        m = LitsModel.mine(small_transactions, 0.3)
        assert m.support({0}) is not None
        assert m.support({4}) is None
        assert m.support([0]) == m.support((0,))  # any iterable works


class TestStructureEdgeCases:
    def test_deviation_over_empty_structure(self, small_transactions):
        structure = LitsStructure([])
        result = deviation_over_structure(
            structure, small_transactions, small_transactions
        )
        assert result.value == 0.0

    def test_counts_with_duplicate_itemsets_collapsed(self, small_transactions):
        structure = LitsStructure(
            [frozenset({0}), frozenset({0}), frozenset({1})]
        )
        assert len(structure) == 2

    def test_very_long_itemset_region(self, small_transactions):
        structure = LitsStructure([frozenset(range(5))])
        counts = structure.counts(small_transactions)
        assert counts.tolist() == [0]


class TestNumericRobustness:
    def test_deviation_values_are_finite(self, basket_pair):
        from repro.core.aggregate import MAX, SUM
        from repro.core.difference import ABSOLUTE, SCALED

        d1, d2 = basket_pair
        m1 = LitsModel.mine(d1, 0.05)
        m2 = LitsModel.mine(d2, 0.05)
        for f in (ABSOLUTE, SCALED):
            for g in (SUM, MAX):
                value = deviation(m1, m2, d1, d2, f=f, g=g).value
                assert np.isfinite(value)
                assert value >= 0.0

    def test_scaled_difference_bounded_by_two(self, basket_pair):
        """|s1-s2| / ((s1+s2)/2) <= 2 always."""
        from repro.core.aggregate import MAX
        from repro.core.difference import SCALED

        d1, d2 = basket_pair
        m1 = LitsModel.mine(d1, 0.05)
        m2 = LitsModel.mine(d2, 0.05)
        value = deviation(m1, m2, d1, d2, f=SCALED, g=MAX).value
        assert value <= 2.0 + 1e-12
