"""Tests for FP-growth: equality with Apriori and brute force."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.quest_basket import generate_basket
from repro.data.transactions import TransactionDataset
from repro.errors import InvalidParameterError
from repro.mining.apriori import apriori
from repro.mining.fpgrowth import fpgrowth
from repro.mining.itemsets import brute_force_frequent


class TestFpGrowth:
    def test_matches_brute_force_on_fixture(self, small_transactions):
        for ms in (0.1, 0.2, 0.3, 0.5):
            fast = fpgrowth(small_transactions, ms)
            slow = brute_force_frequent(small_transactions, ms)
            assert fast.keys() == slow.keys()
            for itemset in fast:
                assert fast[itemset] == pytest.approx(slow[itemset])

    def test_matches_apriori_on_generated_data(self):
        d = generate_basket(
            600, n_items=40, avg_transaction_len=6, n_patterns=30,
            avg_pattern_len=3, seed=19,
        )
        for ms in (0.02, 0.05, 0.1):
            a = apriori(d, ms)
            f = fpgrowth(d, ms)
            assert a.keys() == f.keys()
            for itemset in a:
                assert a[itemset] == pytest.approx(f[itemset])

    def test_max_len(self, small_transactions):
        result = fpgrowth(small_transactions, 0.1, max_len=2)
        assert all(len(s) <= 2 for s in result)
        unbounded = fpgrowth(small_transactions, 0.1)
        # max_len only removes the longer sets.
        assert result == {s: v for s, v in unbounded.items() if len(s) <= 2}

    def test_single_path_shortcut(self):
        """A dataset whose FP-tree is a chain exercises the subset fast path."""
        d = TransactionDataset(
            [(0, 1, 2)] * 5 + [(0, 1)] * 3 + [(0,)] * 2, n_items=3
        )
        result = fpgrowth(d, 0.2)
        expected = brute_force_frequent(d, 0.2)
        assert result.keys() == expected.keys()
        for itemset in result:
            assert result[itemset] == pytest.approx(expected[itemset])

    def test_empty_dataset(self):
        assert fpgrowth(TransactionDataset([], n_items=2), 0.5) == {}

    def test_no_frequent_items(self):
        d = TransactionDataset([(0,), (1,), (2,)], n_items=3)
        assert fpgrowth(d, 0.9) == {}

    def test_threshold_validation(self, small_transactions):
        with pytest.raises(InvalidParameterError):
            fpgrowth(small_transactions, 0.0)

    def test_usable_as_lits_model_backend(self, small_transactions):
        from repro.core.lits import LitsModel

        supports = fpgrowth(small_transactions, 0.2)
        model = LitsModel(supports, 0.2, small_transactions.n_items)
        mined = LitsModel.mine(small_transactions, 0.2)
        assert set(model.itemsets) == set(mined.itemsets)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(0, 5), min_size=1, max_size=4, unique=True),
        min_size=5,
        max_size=30,
    ),
    st.sampled_from([0.15, 0.3, 0.5]),
)
def test_fpgrowth_equals_apriori_property(txns, min_support):
    d = TransactionDataset([tuple(t) for t in txns], n_items=6)
    a = apriori(d, min_support)
    f = fpgrowth(d, min_support)
    assert a.keys() == f.keys()
    for itemset in a:
        assert a[itemset] == pytest.approx(f[itemset])
