"""Tests for grid clustering and k-means."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attribute import AttributeSpace, numeric
from repro.data.tabular import TabularDataset
from repro.errors import InvalidParameterError, NotFittedError
from repro.mining.cluster.grid import Grid, grid_cluster
from repro.mining.cluster.kmeans import KMeans


@pytest.fixture
def blob_space() -> AttributeSpace:
    return AttributeSpace((numeric("x", 0, 10), numeric("y", 0, 10)))


@pytest.fixture
def two_blobs(blob_space) -> TabularDataset:
    rng = np.random.default_rng(3)
    a = rng.normal([2.5, 2.5], 0.4, size=(200, 2))
    b = rng.normal([7.5, 7.5], 0.4, size=(200, 2))
    X = np.clip(np.vstack([a, b]), 0, 9.999)
    return TabularDataset(blob_space, X)


class TestGrid:
    def test_shape(self, blob_space):
        grid = Grid.uniform(blob_space, bins=4)
        assert grid.shape() == (4, 4)

    def test_projection(self, blob_space):
        grid = Grid.uniform(blob_space, bins=4, attributes=("x",))
        assert grid.shape() == (4,)

    def test_assign_matches_predicates(self, two_blobs):
        grid = Grid.uniform(two_blobs.space, bins=5)
        assigned = grid.assign(two_blobs)
        for cell in np.unique(assigned):
            predicate = grid.cell_predicate(int(cell))
            mask = two_blobs.predicate_mask(predicate)
            assert np.array_equal(mask, assigned == cell)

    def test_cells_partition_space(self, two_blobs):
        grid = Grid.uniform(two_blobs.space, bins=3)
        total = np.zeros(len(two_blobs), dtype=int)
        for cell in range(9):
            total += two_blobs.predicate_mask(grid.cell_predicate(cell))
        assert (total == 1).all()

    def test_edge_cells_are_unbounded(self, blob_space):
        grid = Grid.uniform(blob_space, bins=2)
        import math

        first = grid.cell_predicate(0).constraints["x"]
        assert first.lo == -math.inf
        last = grid.cell_predicate(3).constraints["x"]
        assert last.hi == math.inf

    def test_infinite_domain_rejected(self):
        space = AttributeSpace((numeric("x"),))
        with pytest.raises(InvalidParameterError):
            Grid.uniform(space, bins=3)

    def test_categorical_assign_is_vectorised_by_value(self):
        from repro.core.attribute import categorical

        space = AttributeSpace((categorical("colour", (4, 2, 9)),))
        grid = Grid(space, ("colour",), {})
        dataset = TabularDataset(
            space, np.array([[9.0], [4.0], [2.0], [4.0]])
        )
        # one cell per domain value, in declaration order
        assert grid.assign(dataset).tolist() == [2, 0, 1, 0]

    def test_unseen_category_raises_schema_error(self):
        from repro.core.attribute import categorical
        from repro.errors import SchemaError

        space = AttributeSpace((categorical("colour", (4, 2, 9)),))
        grid = Grid(space, ("colour",), {})
        dataset = TabularDataset(space, np.array([[4.0], [5.0]]))
        with pytest.raises(SchemaError, match="value 5"):
            grid.assign(dataset)

    def test_bins_validation(self, blob_space):
        with pytest.raises(InvalidParameterError):
            Grid.uniform(blob_space, bins=0)


class TestGridCluster:
    def test_finds_two_blobs(self, two_blobs):
        clustering = grid_cluster(two_blobs, bins=5, density_threshold=0.05)
        assert clustering.n_clusters == 2

    def test_densities_sum_to_one(self, two_blobs):
        clustering = grid_cluster(two_blobs, bins=4)
        assert clustering.densities.sum() == pytest.approx(1.0)

    def test_cluster_sizes_cover_dense_mass(self, two_blobs):
        clustering = grid_cluster(two_blobs, bins=5, density_threshold=0.05)
        sizes = clustering.cluster_sizes()
        assert len(sizes) == clustering.n_clusters
        assert sizes.sum() <= 1.0 + 1e-9
        assert sizes.sum() > 0.8  # blobs are tight: most mass is dense

    def test_cluster_regions_accessible(self, two_blobs):
        clustering = grid_cluster(two_blobs, bins=5, density_threshold=0.05)
        regions = clustering.cluster_regions(0)
        assert regions
        # every region predicate is non-empty
        assert all(not r.is_empty for r in regions)

    def test_single_cluster_when_threshold_low(self, two_blobs):
        clustering = grid_cluster(two_blobs, bins=2, density_threshold=0.0)
        # all cells dense and mutually adjacent -> one component
        assert clustering.n_clusters == 1


class TestClusterModelDeviation:
    def test_deviation_between_shifted_distributions(self, blob_space):
        from repro.core.cluster_model import ClusterModel
        from repro.core.deviation import deviation

        rng = np.random.default_rng(4)
        d1 = TabularDataset(
            blob_space,
            np.clip(rng.normal([3, 3], 0.7, (300, 2)), 0, 9.999),
        )
        d2 = TabularDataset(
            blob_space,
            np.clip(rng.normal([7, 7], 0.7, (300, 2)), 0, 9.999),
        )
        d1b = TabularDataset(
            blob_space,
            np.clip(rng.normal([3, 3], 0.7, (300, 2)), 0, 9.999),
        )
        m1 = ClusterModel.fit(d1, bins=4)
        m2 = ClusterModel.fit(d2, bins=4)
        m1b = ClusterModel.fit(d1b, bins=4)
        same = deviation(m1, m1b, d1, d1b).value
        cross = deviation(m1, m2, d1, d2).value
        assert same < cross

    def test_gcr_of_different_grids(self, blob_space, two_blobs):
        from repro.core.cluster_model import ClusterModel
        from repro.core.deviation import deviation

        m1 = ClusterModel.fit(two_blobs, bins=3)
        m2 = ClusterModel.fit(two_blobs, bins=4)
        result = deviation(m1, m2, two_blobs, two_blobs)
        # Same data measured over the overlay: zero deviation.
        assert result.value == pytest.approx(0.0)
        # Overlay of 3x3 and 4x4 grids: at most 36 1-D cuts per axis...
        # exactly (3+4-1)^2 = 36 cells when cuts interleave.
        assert len(result.regions) == 36


class TestKMeans:
    def test_recovers_blob_centres(self, two_blobs, rng):
        km = KMeans(n_clusters=2).fit(two_blobs, rng)
        centres = np.sort(km.centroids[:, 0])
        assert centres[0] == pytest.approx(2.5, abs=0.5)
        assert centres[1] == pytest.approx(7.5, abs=0.5)

    def test_predict_assigns_nearest(self, two_blobs, rng):
        km = KMeans(n_clusters=2).fit(two_blobs, rng)
        labels = km.predict(two_blobs)
        assert set(labels.tolist()) == {0, 1}
        # points in the same blob share a label
        assert len(set(labels[:200].tolist())) == 1
        assert len(set(labels[200:].tolist())) == 1

    def test_inertia_decreases_with_k(self, two_blobs, rng):
        i1 = KMeans(n_clusters=1).fit(two_blobs, rng).inertia(two_blobs)
        i2 = KMeans(n_clusters=2).fit(two_blobs, rng).inertia(two_blobs)
        assert i2 < i1

    def test_unfitted_predict_rejected(self, two_blobs):
        with pytest.raises(NotFittedError):
            KMeans(n_clusters=2).predict(two_blobs)

    def test_invalid_k_rejected(self, two_blobs, rng):
        with pytest.raises(InvalidParameterError):
            KMeans(n_clusters=0).fit(two_blobs, rng)
        with pytest.raises(InvalidParameterError):
            KMeans(n_clusters=10_000).fit(two_blobs, rng)
