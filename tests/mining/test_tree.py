"""Tests for the CART-style decision tree: splits, building, prediction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attribute import AttributeSpace, categorical
from repro.data.quest_classify import generate_classification
from repro.data.tabular import TabularDataset, from_rows
from repro.errors import InvalidParameterError, SchemaError
from repro.mining.tree.builder import TreeParams, build_tree
from repro.mining.tree.splits import (
    best_categorical_split,
    best_numeric_split,
    entropy,
    gini,
)


class TestImpurities:
    def test_gini_pure_is_zero(self):
        assert gini(np.array([10, 0])) == 0.0

    def test_gini_balanced_binary(self):
        assert gini(np.array([5, 5])) == pytest.approx(0.5)

    def test_gini_empty(self):
        assert gini(np.array([0, 0])) == 0.0

    def test_entropy_balanced_binary_is_one_bit(self):
        assert entropy(np.array([8, 8])) == pytest.approx(1.0)

    def test_entropy_pure_is_zero(self):
        assert entropy(np.array([7, 0])) == 0.0


class TestNumericSplit:
    def test_finds_perfect_threshold(self):
        col = np.array([1.0, 2.0, 3.0, 10.0, 11.0, 12.0])
        y = np.array([0, 0, 0, 1, 1, 1])
        split = best_numeric_split("x", col, y, 2, min_leaf=1)
        assert split is not None
        assert 3.0 < split.threshold <= 10.0
        assert split.gain == pytest.approx(0.5)

    def test_constant_column_unsplittable(self):
        col = np.ones(6)
        y = np.array([0, 1, 0, 1, 0, 1])
        assert best_numeric_split("x", col, y, 2, min_leaf=1) is None

    def test_respects_min_leaf(self):
        col = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.array([0, 1, 1, 1])
        # Perfect split at 1.5 leaves one tuple on the left: illegal.
        split = best_numeric_split("x", col, y, 2, min_leaf=2)
        assert split is None or (
            (col < split.threshold).sum() >= 2
            and (col >= split.threshold).sum() >= 2
        )

    def test_no_gain_means_no_split(self):
        col = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.array([0, 1, 0, 1])
        split = best_numeric_split("x", col, y, 2, min_leaf=1)
        if split is not None:
            assert split.gain > 0


class TestCategoricalSplit:
    def test_two_class_prefix_split_is_optimal(self):
        attribute = categorical("c", (0, 1, 2))
        col = np.array([0.0] * 5 + [1.0] * 5 + [2.0] * 5)
        y = np.array([0] * 5 + [1] * 5 + [0] * 5)
        split = best_categorical_split(attribute, col, y, 2, min_leaf=1)
        assert split is not None
        # Separating value 1 from {0, 2} is the pure split.
        assert split.left_values in (frozenset({1}), frozenset({0, 2}))
        assert split.gain == pytest.approx(gini(np.array([10, 5])))

    def test_single_value_unsplittable(self):
        attribute = categorical("c", (0, 1))
        col = np.zeros(6)
        y = np.array([0, 1, 0, 1, 0, 1])
        assert best_categorical_split(attribute, col, y, 2, min_leaf=1) is None


class TestBuildTree:
    def test_learns_f1_exactly(self):
        """F1 is a pure function of age with cuts at 40 and 60: the tree
        should recover a 3-leaf structure with zero training error."""
        d = generate_classification(5_000, function=1, seed=1)
        tree = build_tree(d, TreeParams(max_depth=4, min_leaf=20))
        assert tree.n_leaves == 3
        assert (tree.predict(d) == d.y).all()

    def test_leaf_partition_covers_every_row_once(self):
        d = generate_classification(2_000, function=2, seed=2)
        tree = build_tree(d, TreeParams(max_depth=5, min_leaf=30))
        predicates = tree.leaf_predicates()
        assignments = tree.assign_dataset(d)
        coverage = np.zeros(len(d), dtype=int)
        for leaf_id, predicate in enumerate(predicates):
            mask = d.predicate_mask(predicate)
            coverage += mask
            # predicate membership must agree with the tree descent
            assert np.array_equal(mask, assignments == leaf_id)
        assert (coverage == 1).all()

    def test_predictions_match_leaf_majorities(self):
        d = generate_classification(1_000, function=3, seed=3)
        tree = build_tree(d, TreeParams(max_depth=4, min_leaf=25))
        assignments = tree.assign_dataset(d)
        predictions = tree.predict(d)
        for leaf in tree.leaves:
            mask = assignments == leaf.leaf_id
            if mask.any():
                assert (predictions[mask] == leaf.prediction).all()

    def test_max_depth_zero_gives_single_leaf(self):
        d = generate_classification(500, function=1, seed=4)
        tree = build_tree(d, TreeParams(max_depth=0, min_leaf=10))
        assert tree.n_leaves == 1
        assert tree.depth == 0

    def test_min_leaf_respected(self):
        d = generate_classification(1_000, function=2, seed=5)
        params = TreeParams(max_depth=8, min_leaf=100)
        tree = build_tree(d, params)
        counts = np.bincount(tree.assign_dataset(d), minlength=tree.n_leaves)
        assert (counts >= params.min_leaf).all()

    def test_unlabelled_dataset_rejected(self, two_d_space):
        space = AttributeSpace(two_d_space.attributes, ())
        d = TabularDataset(space, np.zeros((10, 2)))
        with pytest.raises(SchemaError):
            build_tree(d)

    def test_empty_dataset_rejected(self, two_d_space):
        d = from_rows(two_d_space, [], [])
        with pytest.raises(InvalidParameterError):
            build_tree(d)

    def test_invalid_params_rejected(self):
        with pytest.raises(InvalidParameterError):
            TreeParams(max_depth=-1)
        with pytest.raises(InvalidParameterError):
            TreeParams(min_leaf=0)
        with pytest.raises(InvalidParameterError):
            TreeParams(impurity="nonsense")

    def test_entropy_impurity_also_works(self):
        d = generate_classification(1_000, function=1, seed=6)
        tree = build_tree(d, TreeParams(max_depth=4, min_leaf=20, impurity="entropy"))
        error = float(np.mean(tree.predict(d) != d.y))
        assert error < 0.05

    def test_categorical_split_in_tree(self):
        """F3 depends on elevel: the tree must use the categorical attribute."""
        d = generate_classification(4_000, function=3, seed=7)
        tree = build_tree(d, TreeParams(max_depth=6, min_leaf=20))
        error = float(np.mean(tree.predict(d) != d.y))
        assert error < 0.05
        from repro.mining.tree.splits import CategoricalSplit

        def has_categorical(node):
            if node.is_leaf:
                return False
            if isinstance(node.split, CategoricalSplit):
                return True
            return has_categorical(node.left) or has_categorical(node.right)

        assert has_categorical(tree.root)

    def test_describe_renders(self):
        d = generate_classification(500, function=1, seed=8)
        tree = build_tree(d, TreeParams(max_depth=3, min_leaf=20))
        text = tree.describe()
        assert "leaf#" in text
        assert "if " in text

    def test_leaf_class_fractions_sum_to_one(self):
        d = generate_classification(800, function=2, seed=9)
        tree = build_tree(d, TreeParams(max_depth=4, min_leaf=20))
        fractions = tree.leaf_class_fractions()
        assert fractions.shape == (tree.n_leaves, 2)
        assert fractions.sum() == pytest.approx(1.0)


class TestFlatDescent:
    """The compiled level-synchronous descent equals the masked oracle."""

    @pytest.mark.parametrize("function", [1, 3, 5, 6])
    def test_flat_equals_masked_descent(self, function):
        train = generate_classification(3_000, function=function, seed=21)
        tree = build_tree(train, TreeParams(max_depth=7, min_leaf=15))
        for n in (0, 1, 250, 2_000):
            probe = generate_classification(max(n, 1), function=1, seed=22)
            probe = probe.take(np.arange(n))
            flat = tree.leaf_assign(probe.columns, probe.n_rows)
            masked = tree.leaf_assign_masked(probe.columns, probe.n_rows)
            np.testing.assert_array_equal(flat, masked)

    def test_single_leaf_tree(self):
        d = from_rows(
            AttributeSpace(
                (categorical("c", (0, 1)),), class_labels=(0, 1)
            ),
            [(0.0,), (1.0,)],
            labels=[1, 1],
        )
        tree = build_tree(d, TreeParams(max_depth=3, min_leaf=1))
        assert tree.n_leaves == 1
        assert tree.leaf_assign(d.columns, 2).tolist() == [0, 0]

    def test_sparse_huge_categorical_codes_fall_back_to_masked(self):
        """A split on e.g. {0, 10**9} must not allocate a dense table."""
        space = AttributeSpace(
            (categorical("c", (0, 1, 999_999_999, 1_000_000_000)),),
            class_labels=(0, 1),
        )
        # codes 0 and 10**9 share a class, so the optimal prefix split
        # puts both in left_values -- a code range of a billion.
        rows = (
            [(0.0,)] * 30 + [(1e9,)] * 30
            + [(1.0,)] * 30 + [(999_999_999.0,)] * 30
        )
        labels = [0] * 60 + [1] * 60
        d = from_rows(space, rows, labels=labels)
        tree = build_tree(d, TreeParams(max_depth=2, min_leaf=5))
        assert tree._flat() is None  # uncompilable: masked path serves
        assigned = tree.leaf_assign(d.columns, len(rows))
        np.testing.assert_array_equal(
            assigned, tree.leaf_assign_masked(d.columns, len(rows))
        )

    def test_out_of_domain_category_falls_right_like_isin(self):
        """The dense membership table preserves np.isin semantics."""
        space = AttributeSpace(
            (categorical("c", (1, 2, 9)),), class_labels=(0, 1)
        )
        rows = [(1.0,)] * 30 + [(2.0,)] * 30 + [(9.0,)] * 30
        labels = [0] * 30 + [1] * 30 + [1] * 30
        d = from_rows(space, rows, labels=labels)
        tree = build_tree(d, TreeParams(max_depth=2, min_leaf=5))
        probe = from_rows(space, [(5.0,), (99.0,), (1.0,)], labels=[0, 0, 0])
        flat = tree.leaf_assign(probe.columns, 3)
        masked = tree.leaf_assign_masked(probe.columns, 3)
        np.testing.assert_array_equal(flat, masked)
