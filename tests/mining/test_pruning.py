"""Tests for cost-complexity pruning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deviation import deviation
from repro.core.dtree_model import DtModel
from repro.data.quest_classify import generate_classification
from repro.errors import InvalidParameterError
from repro.mining.tree.builder import TreeParams, build_tree
from repro.mining.tree.pruning import (
    cost_complexity_path,
    prune_by_validation,
    prune_tree,
)


@pytest.fixture(scope="module")
def noisy_tree():
    """An overgrown tree on noisy data (10% flipped labels)."""
    train = generate_classification(3_000, function=2, seed=41, label_noise=0.1)
    tree = build_tree(train, TreeParams(max_depth=10, min_leaf=10))
    return tree, train


class TestCostComplexityPath:
    def test_sequence_shrinks_to_root(self, noisy_tree):
        tree, _ = noisy_tree
        steps = cost_complexity_path(tree)
        assert steps[0].n_leaves == tree.n_leaves
        assert steps[-1].n_leaves == 1
        leaves = [s.n_leaves for s in steps]
        assert leaves == sorted(leaves, reverse=True)
        # Each pruning step strictly removes at least one leaf.
        assert all(a > b for a, b in zip(leaves, leaves[1:]))

    def test_alphas_non_negative(self, noisy_tree):
        tree, _ = noisy_tree
        steps = cost_complexity_path(tree)
        assert all(s.alpha >= 0 for s in steps)

    def test_training_error_weakly_increases(self, noisy_tree):
        tree, _ = noisy_tree
        steps = cost_complexity_path(tree)
        errors = [s.training_error for s in steps]
        assert all(b >= a - 1e-12 for a, b in zip(errors, errors[1:]))

    def test_original_tree_untouched(self, noisy_tree):
        tree, _ = noisy_tree
        before = tree.n_leaves
        cost_complexity_path(tree)
        assert tree.n_leaves == before


class TestPruneTree:
    def test_alpha_zero_only_removes_useless_splits(self, noisy_tree):
        tree, train = noisy_tree
        pruned = prune_tree(tree, 0.0)
        # alpha=0 collapses only zero-gain links: training error unchanged.
        assert float(np.mean(pruned.predict(train) != train.y)) == pytest.approx(
            float(np.mean(tree.predict(train) != train.y))
        )

    def test_huge_alpha_collapses_to_root(self, noisy_tree):
        tree, _ = noisy_tree
        pruned = prune_tree(tree, 1e9)
        assert pruned.n_leaves == 1

    def test_leaves_decrease_with_alpha(self, noisy_tree):
        tree, _ = noisy_tree
        sizes = [prune_tree(tree, a).n_leaves for a in (0.0, 0.001, 0.01, 0.1)]
        assert sizes == sorted(sizes, reverse=True)

    def test_negative_alpha_rejected(self, noisy_tree):
        tree, _ = noisy_tree
        with pytest.raises(InvalidParameterError):
            prune_tree(tree, -0.1)


class TestValidationPruning:
    def test_pruned_tree_generalises_at_least_as_well(self, noisy_tree):
        tree, _ = noisy_tree
        validation = generate_classification(
            2_000, function=2, seed=42, label_noise=0.1
        )
        pruned = prune_by_validation(tree, validation)
        holdout = generate_classification(
            2_000, function=2, seed=43, label_noise=0.1
        )
        full_err = float(np.mean(tree.predict(holdout) != holdout.y))
        pruned_err = float(np.mean(pruned.predict(holdout) != holdout.y))
        assert pruned.n_leaves <= tree.n_leaves
        assert pruned_err <= full_err + 0.02  # no material degradation

    def test_unlabelled_validation_rejected(self, noisy_tree):
        from repro.core.attribute import AttributeSpace
        from repro.data.tabular import TabularDataset

        tree, train = noisy_tree
        space = AttributeSpace(train.space.attributes, ())
        unlabelled = TabularDataset(space, train.X)
        with pytest.raises(InvalidParameterError):
            prune_by_validation(tree, unlabelled)


class TestPrunedModelsInFocus:
    def test_pruned_tree_is_a_valid_dt_model(self, noisy_tree):
        """Pruning coarsens the structural component; FOCUS still works."""
        tree, train = noisy_tree
        other = generate_classification(2_000, function=3, seed=44)
        pruned_model = DtModel(prune_tree(tree, 0.01))
        other_model = DtModel.fit(other, TreeParams(max_depth=5, min_leaf=30))
        result = deviation(pruned_model, other_model, train, other)
        assert result.value >= 0
        assert len(result.regions) >= 2

    def test_pruning_coarsens_the_structure(self, noisy_tree):
        tree, train = noisy_tree
        from repro.core.refinement import refines

        full = DtModel(tree)
        pruned = DtModel(prune_tree(tree, 0.05))
        # The full tree's partition refines the pruned tree's partition.
        assert refines(full.structure, pruned.structure)
        assert not (
            pruned.structure.key != full.structure.key
            and refines(pruned.structure, full.structure)
        )
