"""Tests for the Apriori miner and itemset utilities."""

from __future__ import annotations

import pytest

from repro.data.quest_basket import generate_basket
from repro.data.transactions import TransactionDataset
from repro.errors import InvalidParameterError
from repro.mining.apriori import apriori, _generate_candidates
from repro.mining.itemsets import (
    brute_force_frequent,
    canonical,
    sort_itemsets,
    supports,
)


class TestAprioriCorrectness:
    def test_matches_brute_force_on_fixture(self, small_transactions):
        for ms in (0.1, 0.2, 0.3, 0.5):
            fast = apriori(small_transactions, ms)
            slow = brute_force_frequent(small_transactions, ms)
            assert fast.keys() == slow.keys()
            for k in fast:
                assert fast[k] == pytest.approx(slow[k])

    def test_matches_brute_force_on_generated_data(self):
        d = generate_basket(
            300, n_items=12, avg_transaction_len=4, n_patterns=8,
            avg_pattern_len=3, seed=13,
        )
        fast = apriori(d, 0.1)
        slow = brute_force_frequent(d, 0.1)
        assert fast.keys() == slow.keys()

    def test_supports_are_relative(self, small_transactions):
        result = apriori(small_transactions, 0.2)
        assert all(0.2 <= s <= 1.0 for s in result.values())

    def test_downward_closure(self, small_transactions):
        """Every subset of a frequent itemset is frequent."""
        result = apriori(small_transactions, 0.1)
        for itemset in result:
            for item in itemset:
                subset = itemset - {item}
                if subset:
                    assert subset in result
                    assert result[subset] >= result[itemset]

    def test_max_len_caps_itemset_size(self, small_transactions):
        result = apriori(small_transactions, 0.05, max_len=1)
        assert all(len(s) == 1 for s in result)

    def test_empty_dataset(self):
        d = TransactionDataset([], n_items=3)
        assert apriori(d, 0.5) == {}

    def test_threshold_validation(self, small_transactions):
        with pytest.raises(InvalidParameterError):
            apriori(small_transactions, 0.0)
        with pytest.raises(InvalidParameterError):
            apriori(small_transactions, 1.5)

    def test_min_support_one(self):
        d = TransactionDataset([(0, 1), (0, 1), (0,)], n_items=2)
        result = apriori(d, 1.0)
        assert result == {frozenset({0}): 1.0}


class TestCandidateGeneration:
    def test_join_requires_shared_prefix(self):
        frequent = [(0, 1), (0, 2), (1, 2)]
        frequent_set = {frozenset(t) for t in frequent}
        candidates = _generate_candidates(frequent, frequent_set)
        assert candidates == [(0, 1, 2)]

    def test_prune_removes_unsupported_subsets(self):
        # {1,2} is missing, so (0,1,2) must be pruned.
        frequent = [(0, 1), (0, 2)]
        frequent_set = {frozenset(t) for t in frequent}
        assert _generate_candidates(frequent, frequent_set) == []

    def test_no_join_without_prefix_match(self):
        frequent = [(0, 1), (2, 3)]
        frequent_set = {frozenset(t) for t in frequent}
        assert _generate_candidates(frequent, frequent_set) == []


class TestItemsetUtilities:
    def test_canonical(self):
        assert canonical([3, 1, 3]) == frozenset({1, 3})

    def test_sort_itemsets_by_size_then_lex(self):
        sets = [frozenset({2}), frozenset({1, 2}), frozenset({1})]
        assert sort_itemsets(sets) == [
            frozenset({1}), frozenset({2}), frozenset({1, 2}),
        ]

    def test_supports_vector(self, small_transactions):
        vals = supports(small_transactions, [frozenset({0}), frozenset({9 % 5})])
        assert len(vals) == 2
        assert vals[0] == pytest.approx(0.6)
