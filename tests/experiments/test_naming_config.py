"""Tests for dataset naming conventions and experiment scales."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.experiments.config import PAPER_FRACTIONS, Scale, get_scale
from repro.experiments.naming import (
    BasketSpec,
    ClassifySpec,
    parse_basket_name,
    parse_classify_name,
)


class TestNaming:
    def test_parse_paper_basket_name(self):
        spec = parse_basket_name("1M.20L.1K.4000pats.4patlen")
        assert spec.n_transactions == 1_000_000
        assert spec.avg_transaction_len == 20
        assert spec.n_items == 1_000
        assert spec.n_patterns == 4_000
        assert spec.avg_pattern_len == 4

    def test_parse_thousands_pats_spelling(self):
        spec = parse_basket_name("0.75M.20L.1K.4pats.4plen")
        assert spec.n_transactions == 750_000
        assert spec.n_patterns == 4_000

    def test_basket_name_roundtrip(self):
        spec = BasketSpec(500_000, 20, 1_000, 4_000, 4)
        assert parse_basket_name(spec.name()) == spec

    def test_parse_classify_name(self):
        spec = parse_classify_name("1M.F1")
        assert spec.n_rows == 1_000_000
        assert spec.function == 1

    def test_classify_name_roundtrip(self):
        spec = ClassifySpec(20_000, 3)
        assert spec.name() == "20K.F3"
        assert parse_classify_name(spec.name()) == spec

    def test_bad_names_rejected(self):
        with pytest.raises(InvalidParameterError):
            parse_basket_name("not-a-name")
        with pytest.raises(InvalidParameterError):
            parse_classify_name("1M.G1")


class TestScale:
    def test_named_scales(self):
        for name in ("tiny", "small", "paper"):
            scale = get_scale(name)
            assert scale.name == name

    def test_unknown_scale_rejected(self):
        with pytest.raises(InvalidParameterError):
            get_scale("enormous")

    def test_paper_scale_matches_paper_parameters(self):
        scale = Scale.paper()
        assert scale.base_transactions == 1_000_000
        assert scale.n_items == 1_000
        assert scale.avg_transaction_len == 20
        assert scale.n_patterns == 4_000
        assert scale.min_supports == (0.01, 0.008, 0.006)
        assert scale.fractions == PAPER_FRACTIONS
        assert scale.n_reps == 50

    def test_dataset_size_ratios(self):
        scale = Scale.small()
        a, b, c = scale.dataset_sizes()
        assert b == pytest.approx(0.75 * a, abs=1)
        assert c == pytest.approx(0.5 * a, abs=1)

    def test_tree_min_leaf_floor(self):
        scale = Scale.small()
        assert scale.tree_min_leaf(100) == 10
        assert scale.tree_min_leaf(100_000) == int(0.005 * 100_000)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            Scale(
                name="bad", base_transactions=1, n_items=10,
                avg_transaction_len=5, n_patterns=5, avg_pattern_len=2,
                min_supports=(0.1,), base_rows=100,
            )
