"""Tests for windowed deviation series and change-point detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lits import LitsModel
from repro.data.quest_basket import build_pattern_pool, generate_basket
from repro.errors import InvalidParameterError
from repro.experiments.windows import (
    DeviationSeries,
    deviation_series,
    sliding_windows,
    tumbling_windows,
)


def builder(dataset):
    return LitsModel.mine(dataset, 0.05, max_len=2)


@pytest.fixture(scope="module")
def stream_with_change():
    """A temporally ordered dataset: 6 quiet periods, then 2 drifted ones."""
    rng = np.random.default_rng(81)
    pool_a = build_pattern_pool(rng, n_items=60, n_patterns=40, avg_pattern_len=3)
    pool_b = build_pattern_pool(rng, n_items=60, n_patterns=40, avg_pattern_len=5)
    quiet = [
        generate_basket(400, n_items=60, avg_transaction_len=5, rng=rng,
                        pool=pool_a)
        for _ in range(6)
    ]
    drifted = [
        generate_basket(400, n_items=60, avg_transaction_len=5, rng=rng,
                        pool=pool_b)
        for _ in range(2)
    ]
    stream = quiet[0]
    for part in quiet[1:] + drifted:
        stream = stream.concat(part)
    return stream


class TestWindowSlicing:
    def test_tumbling_sizes(self, stream_with_change):
        windows = tumbling_windows(stream_with_change, 400)
        assert len(windows) == 8
        assert all(len(w) == 400 for w in windows)

    def test_tumbling_merges_short_tail(self):
        from repro.data.transactions import TransactionDataset

        d = TransactionDataset([(0,)] * 9, n_items=1)
        windows = tumbling_windows(d, 4)
        # 4 + 4 + 1: the 1-stub (under half a window) merges into window 2.
        assert [len(w) for w in windows] == [4, 5]

    def test_tumbling_keeps_half_size_tail(self):
        from repro.data.transactions import TransactionDataset

        d = TransactionDataset([(0,)] * 10, n_items=1)
        windows = tumbling_windows(d, 4)
        # A tail of exactly half the window size stands on its own.
        assert [len(w) for w in windows] == [4, 4, 2]

    def test_tumbling_empty_dataset(self):
        from repro.data.transactions import TransactionDataset

        assert tumbling_windows(TransactionDataset([], n_items=1), 5) == []

    def test_sliding_overlap(self, stream_with_change):
        windows = sliding_windows(stream_with_change, 800, 400)
        assert len(windows) == 7
        assert all(len(w) == 800 for w in windows)

    def test_validation(self, stream_with_change):
        with pytest.raises(InvalidParameterError):
            tumbling_windows(stream_with_change, 0)
        with pytest.raises(InvalidParameterError):
            sliding_windows(stream_with_change, 10, 0)


class TestDeviationSeries:
    def test_consecutive_series_finds_the_change(self, stream_with_change):
        windows = tumbling_windows(stream_with_change, 400)
        series = deviation_series(windows, builder)
        assert len(series.deviations) == 7
        # The largest jump is at the quiet->drifted boundary (index 5).
        assert series.argmax() == 5
        assert 5 in series.change_points(z_threshold=3.0)

    def test_baseline_series(self, stream_with_change):
        windows = tumbling_windows(stream_with_change, 400)
        series = deviation_series(windows, builder, baseline=0)
        assert len(series.deviations) == 7
        assert series.mode == "baseline"
        # windows 6-7 (positions 5-6 after skipping the baseline) drifted:
        quiet_max = max(series.deviations[:5])
        assert min(series.deviations[5:]) > quiet_max

    def test_change_points_empty_for_flat_series(self):
        series = DeviationSeries((1.0, 1.0, 1.0, 1.0, 1.0), "consecutive")
        assert series.change_points() == []

    def test_change_points_need_four_windows(self):
        series = DeviationSeries((1.0, 9.0), "consecutive")
        assert series.change_points() == []

    def test_validation(self, stream_with_change):
        windows = tumbling_windows(stream_with_change, 400)
        with pytest.raises(InvalidParameterError):
            deviation_series(windows[:1], builder)
        with pytest.raises(InvalidParameterError):
            deviation_series(windows, builder, baseline=99)
