"""Integration tests: the experiment harness runs end to end at micro scale.

These are deliberately tiny (seconds, not minutes); the benchmark suite
exercises the ``tiny`` scale and EXPERIMENTS.md records a ``small`` run.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import Scale
from repro.experiments.deviation_tables import figure_13, figure_14
from repro.experiments.figures import dt_sd_family, lits_sd_family
from repro.experiments.me_correlation import figure_15
from repro.experiments.reporting import format_curves, format_table
from repro.experiments.significance_tables import table_1, table_2


@pytest.fixture(scope="module")
def micro() -> Scale:
    """Smaller than tiny: integration-test sized."""
    return Scale(
        name="micro",
        base_transactions=600,
        n_items=60,
        avg_transaction_len=6,
        n_patterns=60,
        avg_pattern_len=3,
        min_supports=(0.03, 0.02),
        base_rows=800,
        fractions=(0.1, 0.4, 0.8),
        n_reps=3,
        n_boot=5,
        max_itemset_len=2,
        tree_max_depth=4,
        tree_min_leaf_frac=0.02,
    )


class TestSignificanceTables:
    def test_table_1_shape(self, micro):
        result = table_1(micro)
        assert len(result.significances) == len(micro.fractions) - 1
        assert all(0 <= s <= 100 for s in result.significances)
        rows = result.rows()
        assert rows[-1][1] == "-"

    def test_table_2_shape(self, micro):
        result = table_2(micro)
        assert len(result.significances) == len(micro.fractions) - 1

    def test_seed_override_matches_runner_derivation(self, micro):
        """table_1(scale, seed=S) publishes the identical table as the
        runner's --seed S override (dataclasses.replace on the scale):
        both mechanisms derive the per-table generator the same way."""
        import dataclasses

        via_runner = table_1(dataclasses.replace(micro, seed=77))
        via_param = table_1(micro, seed=77)
        assert via_runner == via_param
        assert table_2(dataclasses.replace(micro, seed=77)) == table_2(
            micro, seed=77
        )


class TestCurveFamilies:
    def test_lits_family(self, micro):
        family = lits_sd_family(micro, micro.base_transactions, "Figure 7")
        assert len(family.curves) == len(micro.min_supports)
        for curve in family.curves:
            # SD at the largest fraction is below SD at the smallest.
            means = curve.means()
            assert means[-1] < means[0]

    def test_dt_family(self, micro):
        family = dt_sd_family(
            micro, micro.base_rows, "Figure 10", functions=(1, 2)
        )
        assert len(family.curves) == 2
        assert family.figure == "Figure 10"


class TestDeviationTables:
    def test_figure_13_rows(self, micro):
        rows = figure_13(micro, n_boot=5)
        assert [r.label for r in rows] == [
            "D(1)", "D(2)", "D(3)", "D(4)", "D+d(5)", "D+d(6)", "D+d(7)",
        ]
        for row in rows:
            assert row.delta >= 0
            assert row.delta_star >= row.delta - 1e-9  # Theorem 4.2
            assert row.time_delta_star < row.time_delta  # models-only is faster
        # Cross-process datasets deviate more than the same-process one.
        assert rows[1].delta > rows[0].delta

    def test_figure_14_rows(self, micro):
        rows = figure_14(micro, n_boot=5)
        assert len(rows) == 7
        same = rows[0]
        cross = rows[1:4]
        assert all(r.delta > same.delta for r in cross)

    def test_figure_15_correlation(self, micro):
        result = figure_15(micro)
        assert len(result.points) == 6
        # strong positive correlation, as the paper reports
        assert result.pearson_r > 0.8


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xxx", 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("---")

    def test_format_curves_renders(self):
        text = format_curves(
            [0.1, 0.5, 0.9],
            [("up", [1.0, 2.0, 3.0]), ("down", [3.0, 2.0, 1.0])],
        )
        assert "* = up" in text
        assert "o = down" in text

    def test_format_curves_handles_empty(self):
        assert format_curves([], []) == "(no data)"

    def test_format_curves_constant_series(self):
        text = format_curves([0.0, 1.0], [("flat", [1.0, 1.0])])
        assert "flat" in text
