"""Tests for the sample-deviation machinery (Section 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lits import LitsModel
from repro.data.quest_basket import generate_basket
from repro.errors import InvalidParameterError
from repro.experiments.sample_size import (
    SampleDeviationCurve,
    sample_deviation,
    sample_deviation_curve,
)


def builder(dataset):
    return LitsModel.mine(dataset, 0.05, max_len=2)


@pytest.fixture(scope="module")
def dataset():
    return generate_basket(
        1_000, n_items=60, avg_transaction_len=6, n_patterns=50,
        avg_pattern_len=3, seed=17,
    )


class TestSampleDeviation:
    def test_full_fraction_sample_has_small_sd(self, dataset):
        rng = np.random.default_rng(1)
        full_model = builder(dataset)
        sd_small = np.mean([
            sample_deviation(dataset, full_model, builder, 0.05, rng)
            for _ in range(3)
        ])
        sd_large = np.mean([
            sample_deviation(dataset, full_model, builder, 0.8, rng)
            for _ in range(3)
        ])
        assert sd_large < sd_small

    def test_without_replacement_full_sample_is_exact(self, dataset):
        """A WOR sample of fraction 1.0 is a permutation: SD must be 0."""
        rng = np.random.default_rng(2)
        full_model = builder(dataset)
        sd = sample_deviation(
            dataset, full_model, builder, 1.0, rng, replace=False
        )
        assert sd == pytest.approx(0.0, abs=1e-12)


class TestCurve:
    def test_curve_shape(self, dataset):
        rng = np.random.default_rng(3)
        curve = sample_deviation_curve(
            dataset, builder, fractions=(0.1, 0.4, 0.8), n_reps=4, rng=rng
        )
        assert curve.fractions == (0.1, 0.4, 0.8)
        assert all(len(v) == 4 for v in curve.replicates.values())
        assert len(curve.means()) == 3

    def test_curve_decreases_on_average(self, dataset):
        rng = np.random.default_rng(4)
        curve = sample_deviation_curve(
            dataset, builder, fractions=(0.05, 0.8), n_reps=5, rng=rng
        )
        means = curve.means()
        assert means[-1] < means[0]

    def test_significance_rows(self, dataset):
        rng = np.random.default_rng(5)
        curve = sample_deviation_curve(
            dataset, builder, fractions=(0.05, 0.3, 0.8), n_reps=6, rng=rng
        )
        rows = curve.significance_of_decrease()
        assert len(rows) == 2
        assert rows[0][0] == 0.05
        assert all(0.0 <= sig <= 100.0 for _, sig in rows)

    def test_zero_reps_rejected(self, dataset):
        with pytest.raises(InvalidParameterError):
            sample_deviation_curve(
                dataset, builder, fractions=(0.5,), n_reps=0,
                rng=np.random.default_rng(0),
            )

    def test_curve_dataclass_helpers(self):
        curve = SampleDeviationCurve(
            fractions=(0.1, 0.2),
            replicates={
                0.1: np.array([1.0, 1.2]),
                0.2: np.array([0.5, 0.6]),
            },
            label="demo",
        )
        assert curve.means().tolist() == [1.1, 0.55]
        ((fraction, sig),) = curve.significance_of_decrease()
        assert fraction == 0.1
        assert sig > 50.0
