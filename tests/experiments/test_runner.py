"""Smoke tests for the experiment runner CLI (fast experiments only)."""

from __future__ import annotations

import io

import pytest

from repro.experiments.runner import EXPERIMENTS, main, run_all
from repro.experiments.config import Scale


class TestRunnerCli:
    def test_experiment_registry_covers_every_table_and_figure(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "fig7-9", "fig10-12", "fig13", "fig14",
            "fig15",
        }

    def test_single_fast_experiment(self, capsys):
        code = main(["--scale", "tiny", "--experiment", "table2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Significance" in out

    def test_fig15_runs(self, capsys):
        code = main(["--scale", "tiny", "--experiment", "fig15"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Pearson r" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["--experiment", "fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["--scale", "huge"])


class TestRunAll:
    def test_run_all_streams_output(self):
        """run_all at a micro scale touches every experiment."""
        micro = Scale(
            name="micro",
            base_transactions=400,
            n_items=50,
            avg_transaction_len=5,
            n_patterns=40,
            avg_pattern_len=3,
            min_supports=(0.04,),
            base_rows=500,
            fractions=(0.2, 0.8),
            n_reps=2,
            n_boot=3,
            max_itemset_len=2,
            tree_max_depth=3,
            tree_min_leaf_frac=0.05,
        )
        stream = io.StringIO()
        run_all(micro, stream=stream)
        text = stream.getvalue()
        for name in EXPERIMENTS:
            assert f"=== {name} " in text
