"""Tests for the row-count crossover study."""

from __future__ import annotations

import pytest

from repro.experiments.crossover import (
    CrossoverRow,
    fig14_crossover,
    format_crossover,
)


class TestCrossoverMachinery:
    def test_sweep_shapes(self):
        rows = fig14_crossover((2_000, 5_000), n_boot=5)
        assert [r.n_rows for r in rows] == [2_000, 5_000]
        for row in rows:
            assert len(row.block_sigs) == 3
            assert 0 <= row.same_process_sig <= 100

    def test_verdict_predicate(self):
        good = CrossoverRow(10, 50.0, (99.0, 100.0, 96.0))
        assert good.paper_verdicts_hold
        bad_same = CrossoverRow(10, 99.0, (99.0, 100.0, 96.0))
        assert not bad_same.paper_verdicts_hold
        bad_block = CrossoverRow(10, 50.0, (99.0, 10.0, 96.0))
        assert not bad_block.paper_verdicts_hold

    def test_format(self):
        rows = [CrossoverRow(1_000, 40.0, (10.0, 20.0, 30.0))]
        text = format_crossover(rows)
        assert "under-powered" in text
        assert "1000" in text


@pytest.mark.slow
class TestCrossoverAtScale:
    def test_verdicts_hold_by_100k_rows(self):
        """The EXPERIMENTS.md claim, as an executable (slow) test."""
        rows = fig14_crossover((100_000,), n_boot=15)
        assert rows[0].paper_verdicts_hold
