"""Property-based tests of the fleet matrix engine (hypothesis).

The load-bearing claims:

* the delta*-pruned matrix agrees with the exhaustive oracle -- exact
  wherever it scanned, majorising-but-certified elsewhere, identical
  threshold decisions everywhere, and *identical matrices* whenever the
  threshold prunes nothing (including exactly-at-a-bound thresholds);
* the engine's exhaustive matrix equals the naive pair-by-pair
  deviation loop despite scanning each store once;
* single-store fleets degenerate cleanly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.deviation import deviation
from repro.core.lits import LitsModel
from repro.data.transactions import TransactionDataset
from repro.fleet import FleetDeviationMatrix, components

N_ITEMS = 6
MIN_SUPPORT = 0.25


@st.composite
def fleets(draw, min_stores: int = 2, max_stores: int = 4):
    """A random fleet: per-store transaction datasets plus mined models."""
    n_stores = draw(st.integers(min_stores, max_stores))
    datasets = []
    for _ in range(n_stores):
        n = draw(st.integers(6, 24))
        txns = draw(
            st.lists(
                st.lists(
                    st.integers(0, N_ITEMS - 1),
                    min_size=1, max_size=4, unique=True,
                ),
                min_size=n, max_size=n,
            )
        )
        datasets.append(TransactionDataset([tuple(t) for t in txns], N_ITEMS))
    models = [
        LitsModel.mine(d, MIN_SUPPORT, max_len=2) for d in datasets
    ]
    return models, datasets


def oracle_matrix(models, datasets) -> np.ndarray:
    n = len(models)
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            out[i, j] = out[j, i] = deviation(
                models[i], models[j], datasets[i], datasets[j]
            ).value
    return out


@settings(max_examples=25, deadline=None)
@given(fleets())
def test_exhaustive_equals_pairwise_loop(fleet):
    models, datasets = fleet
    result = FleetDeviationMatrix(models, datasets).exhaustive()
    oracle = oracle_matrix(models, datasets)
    assert np.allclose(result.values, oracle, atol=1e-9)
    assert result.exact_mask.all()
    assert np.allclose(result.values, result.values.T)
    assert np.allclose(np.diag(result.values), 0.0)


@settings(max_examples=25, deadline=None)
@given(fleets(), st.data())
def test_pruned_agrees_with_exhaustive_oracle(fleet, data):
    models, datasets = fleet
    n = len(models)
    oracle = oracle_matrix(models, datasets)
    engine = FleetDeviationMatrix(models, datasets)
    bounds = engine.bound_matrix()
    off_diag = bounds[np.triu_indices(n, k=1)]

    # Thresholds to try: arbitrary quantiles plus *exact bound values*
    # (the threshold-edge case: a bound equal to the threshold prunes).
    candidates = [float(v) for v in off_diag]
    candidates.append(
        float(np.quantile(off_diag, data.draw(st.floats(0.0, 1.0))))
    )
    t = data.draw(st.sampled_from(candidates))

    result = engine.pruned(t)
    # Pruned pairs are exactly those whose bound is at or below t.
    expected_pruned = int((off_diag <= t).sum())
    assert result.n_pruned == expected_pruned
    # Exact entries equal the oracle; pruned entries carry the bound,
    # which majorises the oracle while staying certified at <= t.
    assert np.allclose(result.values[result.exact_mask],
                       oracle[result.exact_mask], atol=1e-9)
    assert (result.values >= oracle - 1e-9).all()
    pruned_mask = ~result.exact_mask
    assert (result.values[pruned_mask] <= t + 1e-12).all()
    # Hence every threshold decision -- and the threshold grouping --
    # agrees with the exhaustive oracle.
    assert (
        (result.values <= t + 1e-12) == (oracle <= t + 1e-12)
    ).all()
    assert result.components() == components(oracle, t, names=result.names)


@settings(max_examples=25, deadline=None)
@given(fleets())
def test_threshold_below_every_bound_gives_matrix_equality(fleet):
    """When nothing is certified the pruned matrix IS the exhaustive one."""
    models, datasets = fleet
    engine = FleetDeviationMatrix(models, datasets)
    exhaustive = FleetDeviationMatrix(models, datasets).exhaustive()
    result = engine.pruned(-1.0)
    assert result.n_pruned == 0
    assert np.array_equal(result.values, exhaustive.values)
    assert result.exact_mask.all()


@settings(max_examples=15, deadline=None)
@given(fleets(min_stores=1, max_stores=1), st.floats(0.0, 10.0))
def test_single_store_fleet_degenerates(fleet, threshold):
    models, datasets = fleet
    engine = FleetDeviationMatrix(models, datasets)
    for result in (engine.exhaustive(), engine.pruned(threshold)):
        assert result.values.shape == (1, 1)
        assert result.values[0, 0] == 0.0
        assert result.exact_mask.all()
        assert result.components(threshold) == {0: ["store-0"]}
