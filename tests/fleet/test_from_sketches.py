"""Federated fleet comparison: payloads in, oracle decisions out.

``FleetDeviationMatrix.from_sketches`` receives only wire payloads --
no dataset, no index, no row is reachable from the comparer -- and must
still reproduce the row-level engine exactly:

* ``exhaustive()`` values **bit-equal** to the row-level oracle (same
  integer counts, same ``deviation_from_counts`` arithmetic);
* ``pruned(t)`` agreeing with the oracle on every ``<= t`` decision;
* ``qualify()`` equal to the counts-bootstrap a site could run locally
  (partition fleets, disjoint regions), and refusing for lits fleets
  where only the certified delta* bound is sound;
* kilobyte-scale accounting: every store's shipment measured and small.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregate import MAX
from repro.core.difference import SCALED
from repro.core.dtree_model import DtModel
from repro.core.lits import LitsModel
from repro.data.quest_basket import build_pattern_pool, generate_basket
from repro.data.quest_classify import generate_classification
from repro.errors import (
    IncompatibleModelsError,
    InvalidParameterError,
    WireFormatError,
)
from repro.fleet import FleetDeviationMatrix, probe_itemsets
from repro.fleet.federated import SketchFleet
from repro.mining.tree.builder import TreeParams
from repro.stats.resample_plan import CountsResamplePlan
from repro.stream.sketch import PartitionSketch, SupportSketch
from repro.wire import pack

N_STORES = 6


@pytest.fixture(scope="module")
def lits_setup():
    """Six stores from two buying processes, plus their shipments."""
    rng = np.random.default_rng(13)
    pool_a = build_pattern_pool(rng, n_items=40, n_patterns=25,
                                avg_pattern_len=3)
    pool_b = build_pattern_pool(rng, n_items=40, n_patterns=25,
                                avg_pattern_len=5)
    datasets = [
        generate_basket(400, n_items=40, avg_transaction_len=6, rng=rng,
                        pool=pool)
        for pool in (pool_a, pool_a, pool_a, pool_b, pool_b, pool_b)
    ]
    models = [LitsModel.mine(d, 0.05, max_len=2) for d in datasets]
    # the federated protocol: models travel first, then every site
    # sketches the fleet-wide probe collection
    probes = probe_itemsets(models)
    sketches = [SupportSketch.from_dataset(d, probes) for d in datasets]
    payloads = [
        (pack(m), pack(s)) for m, s in zip(models, sketches)
    ]
    return models, datasets, payloads


@pytest.fixture(scope="module")
def partition_setup():
    """Four stores sketched over one fleet-shared reference structure."""
    datasets = [
        generate_classification(400, function=fn, seed=60 + i)
        for i, fn in enumerate((1, 1, 2, 3))
    ]
    ref = DtModel.fit(datasets[0], TreeParams(max_depth=4, min_leaf=25))
    sketches = [
        PartitionSketch.from_dataset(d, ref.structure) for d in datasets
    ]
    payloads = [pack(s, model=ref) for s in sketches]
    return ref, datasets, sketches, payloads


class TestExhaustiveOracleAgreement:
    def test_lits_values_bit_equal_to_row_level_engine(self, lits_setup):
        models, datasets, payloads = lits_setup
        oracle = FleetDeviationMatrix(models, datasets).exhaustive()
        fleet = FleetDeviationMatrix.from_sketches(payloads)
        result = fleet.exhaustive()
        # bit-equal, not merely close: identical counts, identical
        # arithmetic
        assert np.array_equal(result.values, oracle.values)
        assert result.exact_mask.all()
        assert result.n_sketch_exact == result.n_pairs == 15
        assert result.n_scanned == 0

    def test_partition_values_bit_equal_to_row_level_engine(
        self, partition_setup
    ):
        ref, datasets, _, payloads = partition_setup
        oracle = FleetDeviationMatrix(
            [ref] * len(datasets), datasets
        ).exhaustive()
        result = FleetDeviationMatrix.from_sketches(payloads).exhaustive()
        assert np.array_equal(result.values, oracle.values)
        assert result.kind == "partition"

    def test_non_default_f_g_agree_with_oracle(self, lits_setup):
        models, datasets, payloads = lits_setup
        oracle = FleetDeviationMatrix(
            models, datasets, f=SCALED, g=MAX
        ).exhaustive()
        result = FleetDeviationMatrix.from_sketches(
            payloads, f=SCALED, g=MAX
        ).exhaustive()
        assert np.array_equal(result.values, oracle.values)
        assert result.f_name == SCALED.name
        assert result.g_name == MAX.name

    def test_pair_lookup_by_name(self, lits_setup):
        _, _, payloads = lits_setup
        names = [f"shop-{i}" for i in range(N_STORES)]
        fleet = FleetDeviationMatrix.from_sketches(payloads, names=names)
        values = fleet.exhaustive().values
        assert fleet.pair("shop-0", "shop-3") == values[0, 3]
        assert fleet.pair(2, 2) == 0.0


class TestPrunedDecisionAgreement:
    def test_every_threshold_decision_matches_oracle(self, lits_setup):
        models, datasets, payloads = lits_setup
        oracle = FleetDeviationMatrix(models, datasets).exhaustive().values
        fleet = FleetDeviationMatrix.from_sketches(payloads)
        bounds = fleet.bound_matrix()
        off = bounds[np.triu_indices(N_STORES, k=1)]
        for t in (float(np.min(off)), float(np.median(off)),
                  float(np.max(off))):
            result = fleet.pruned(t)
            # pruned entries are bounds: they majorise the oracle and
            # sit at or below t, so every <= t decision is the oracle's
            assert (result.values >= oracle - 1e-9).all()
            assert (result.values[~result.exact_mask] <= t + 1e-12).all()
            assert ((result.values <= t) == (oracle <= t)).all()
            assert np.allclose(
                result.values[result.exact_mask], oracle[result.exact_mask]
            )
            assert result.n_sketch_exact + result.n_pruned == result.n_pairs

    def test_bounds_only_fallback_never_touches_sketches(self, lits_setup):
        models, datasets, payloads = lits_setup
        fleet = FleetDeviationMatrix.from_sketches(payloads)
        bounds = fleet.bound_matrix()
        t = float(np.max(bounds))  # certifies every pair
        result = fleet.pruned(t)
        assert result.n_pruned == result.n_pairs
        assert result.n_sketch_exact == 0
        off_diag = ~np.eye(N_STORES, dtype=bool)
        assert np.array_equal(result.values[off_diag], bounds[off_diag])
        # groups from the all-pruned matrix equal the oracle's groups
        oracle = FleetDeviationMatrix(models, datasets).exhaustive()
        assert result.components() == oracle.components(t)

    def test_pruned_is_lits_only(self, partition_setup):
        _, _, _, payloads = partition_setup
        fleet = FleetDeviationMatrix.from_sketches(payloads)
        with pytest.raises(IncompatibleModelsError, match="lits"):
            fleet.pruned(1.0)

    def test_pruned_requires_majorisable_f_g(self, lits_setup):
        _, _, payloads = lits_setup
        fleet = FleetDeviationMatrix.from_sketches(payloads, f=SCALED)
        with pytest.raises(InvalidParameterError, match="f_a"):
            fleet.pruned(1.0)


class TestQualification:
    def test_qualify_equals_local_counts_bootstrap(self, partition_setup):
        _, _, sketches, payloads = partition_setup
        fleet = FleetDeviationMatrix.from_sketches(payloads)
        local = CountsResamplePlan.from_sketches(
            sketches[0], sketches[2]
        ).significance(300, seed=5)
        federated = fleet.qualify(0, 2, n_boot=300, seed=5)
        assert federated.p_value == local.p_value
        assert federated.observed == local.observed

    def test_qualify_separates_same_from_drifted(self, partition_setup):
        _, _, _, payloads = partition_setup
        fleet = FleetDeviationMatrix.from_sketches(payloads)
        same = fleet.qualify(0, 1, n_boot=300, seed=1).p_value
        drifted = fleet.qualify(0, 2, n_boot=300, seed=1).p_value
        assert drifted < 0.05 < same

    def test_qualify_is_partition_only(self, lits_setup):
        _, _, payloads = lits_setup
        fleet = FleetDeviationMatrix.from_sketches(payloads)
        # lits itemset regions overlap: no counts-only bootstrap exists,
        # the certified delta* bound is the qualification mechanism
        with pytest.raises(InvalidParameterError, match="delta\\*"):
            fleet.qualify(0, 1)

    def test_from_sketches_plan_requires_shared_structure(
        self, partition_setup
    ):
        ref, datasets, sketches, _ = partition_setup
        other = DtModel.fit(datasets[2], TreeParams(max_depth=3, min_leaf=40))
        foreign = PartitionSketch.from_dataset(datasets[2], other.structure)
        with pytest.raises(IncompatibleModelsError):
            CountsResamplePlan.from_sketches(sketches[0], foreign)
        with pytest.raises(InvalidParameterError, match="PartitionSketch"):
            CountsResamplePlan.from_sketches(sketches[0], object())


class TestShipmentAccounting:
    def test_payloads_are_kilobyte_scale(self, lits_setup, partition_setup):
        _, _, lits_payloads = lits_setup
        _, _, _, partition_payloads = partition_setup
        for model_payload, sketch_payload in lits_payloads:
            assert len(model_payload) + len(sketch_payload) < 64 * 1024
        for payload in partition_payloads:
            assert len(payload) < 8 * 1024

    def test_bytes_shipped_counter_and_per_store_sizes(self, lits_setup):
        from repro.obs import MetricsRegistry, use_registry

        _, _, payloads = lits_setup
        registry = MetricsRegistry()
        with use_registry(registry):
            fleet = FleetDeviationMatrix.from_sketches(payloads)
        expected = tuple(len(m) + len(s) for m, s in payloads)
        assert fleet.payload_bytes == expected
        counters = registry.snapshot()["counters"]
        assert counters["wire.bytes_shipped"] == sum(expected)
        # every payload was CRC-verified on the way in
        assert counters["wire.payloads_unpacked"] >= 2 * N_STORES


class TestValidation:
    def test_coverage_gap_names_the_cure(self, lits_setup):
        models, datasets, payloads = lits_setup
        # store 0 sketches only its own itemsets, not the fleet's probes
        narrow = SupportSketch.from_dataset(datasets[0], models[0].itemsets)
        broken = [(pack(models[0]), pack(narrow)), *payloads[1:]]
        fleet = FleetDeviationMatrix.from_sketches(broken)
        with pytest.raises(
            IncompatibleModelsError, match="probe_itemsets"
        ):
            fleet.exhaustive()

    def test_different_partition_structures_rejected(self, partition_setup):
        ref, datasets, _, payloads = partition_setup
        other = DtModel.fit(datasets[1], TreeParams(max_depth=3, min_leaf=40))
        foreign = pack(
            PartitionSketch.from_dataset(datasets[1], other.structure),
            model=other,
        )
        with pytest.raises(
            IncompatibleModelsError, match="fleet-shared"
        ):
            FleetDeviationMatrix.from_sketches([payloads[0], foreign])

    def test_mixed_kinds_rejected(self, lits_setup, partition_setup):
        _, _, lits_payloads = lits_setup
        _, _, _, partition_payloads = partition_setup
        with pytest.raises(IncompatibleModelsError, match="one model kind"):
            FleetDeviationMatrix.from_sketches(
                [lits_payloads[0], partition_payloads[0]]
            )

    def test_wrong_payload_kind_in_pair(self, lits_setup):
        _, _, payloads = lits_setup
        model_payload, sketch_payload = payloads[0]
        with pytest.raises(InvalidParameterError, match="lits-model"):
            SketchFleet([(sketch_payload, sketch_payload)])
        with pytest.raises(InvalidParameterError, match="support-sketch"):
            SketchFleet([(model_payload, model_payload)])
        with pytest.raises(
            InvalidParameterError, match="partition-sketch"
        ):
            SketchFleet([model_payload])

    def test_corrupted_payload_rejected_before_construction(
        self, lits_setup
    ):
        _, _, payloads = lits_setup
        model_payload, sketch_payload = payloads[0]
        mangled = bytearray(sketch_payload)
        mangled[-5] ^= 0x10
        with pytest.raises(WireFormatError, match="checksum"):
            FleetDeviationMatrix.from_sketches(
                [(model_payload, bytes(mangled))]
            )

    def test_empty_and_misnamed_fleets(self, lits_setup):
        _, _, payloads = lits_setup
        with pytest.raises(InvalidParameterError, match="zero payloads"):
            FleetDeviationMatrix.from_sketches([])
        with pytest.raises(InvalidParameterError, match="unique"):
            FleetDeviationMatrix.from_sketches(
                payloads[:2], names=["a", "a"]
            )
        with pytest.raises(InvalidParameterError, match="align"):
            FleetDeviationMatrix.from_sketches(payloads[:2], names=["a"])


class TestReporting:
    def test_report_carries_sketch_exact_and_payload_sizes(self, lits_setup):
        import json

        _, _, payloads = lits_setup
        fleet = FleetDeviationMatrix.from_sketches(payloads)
        result = fleet.exhaustive()
        report = json.loads(json.dumps(result.to_report()))
        assert report["pruning"]["n_sketch_exact"] == 15
        assert report["pruning"]["n_scanned"] == 0
        assert len(report["matrix"]) == N_STORES
