"""Unit tests for the FleetDeviationMatrix engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deviation import deviation
from repro.core.difference import SCALED
from repro.core.dtree_model import DtModel
from repro.core.lits import LitsModel
from repro.data.quest_basket import build_pattern_pool, generate_basket
from repro.data.quest_classify import generate_classification
from repro.errors import IncompatibleModelsError, InvalidParameterError
from repro.fleet import FleetDeviationMatrix
from repro.mining.tree.builder import TreeParams
from repro.stream.chunks import TransactionLog


def lits_builder(dataset) -> LitsModel:
    return LitsModel.mine(dataset, 0.05, max_len=2)


@pytest.fixture(scope="module")
def lits_fleet():
    """Five stores: three from one buying process, two from another."""
    rng = np.random.default_rng(7)
    pool_a = build_pattern_pool(rng, n_items=50, n_patterns=30,
                                avg_pattern_len=3)
    pool_b = build_pattern_pool(rng, n_items=50, n_patterns=30,
                                avg_pattern_len=5)
    datasets = [
        generate_basket(500, n_items=50, avg_transaction_len=6, rng=rng,
                        pool=pool)
        for pool in (pool_a, pool_a, pool_a, pool_b, pool_b)
    ]
    return [lits_builder(d) for d in datasets], datasets


@pytest.fixture(scope="module")
def partition_fleet():
    datasets = [
        generate_classification(500, function=fn, seed=80 + i)
        for i, fn in enumerate((1, 1, 2))
    ]
    params = TreeParams(max_depth=4, min_leaf=25)
    return [DtModel.fit(d, params) for d in datasets], datasets


def pairwise_oracle(models, datasets) -> np.ndarray:
    """The engine-independent oracle: one deviation() call per pair."""
    n = len(models)
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            out[i, j] = out[j, i] = deviation(
                models[i], models[j], datasets[i], datasets[j]
            ).value
    return out


class TestExhaustive:
    def test_matches_pairwise_oracle_lits(self, lits_fleet):
        models, datasets = lits_fleet
        engine = FleetDeviationMatrix(models, datasets)
        result = engine.exhaustive()
        assert np.allclose(result.values, pairwise_oracle(models, datasets))
        assert result.exact_mask.all()
        assert result.n_pruned == 0
        assert result.n_scanned + result.n_model_only == result.n_pairs == 10

    def test_matches_pairwise_oracle_partition(self, partition_fleet):
        models, datasets = partition_fleet
        engine = FleetDeviationMatrix(models, datasets)
        result = engine.exhaustive()
        assert np.allclose(result.values, pairwise_oracle(models, datasets))
        assert result.kind == "partition"

    def test_each_store_scanned_once_not_once_per_pair(self, lits_fleet):
        models, datasets = lits_fleet
        engine = FleetDeviationMatrix(models, datasets)
        engine.exhaustive()
        # 5 stores, 10 pairs: the naive path scans each dataset 4 times.
        assert engine.scan_counts() == [1, 1, 1, 1, 1]
        # A second matrix request reuses every memoised count.
        engine.exhaustive()
        assert engine.scan_counts() == [1, 1, 1, 1, 1]
        assert engine.n_pair_computations == 10

    def test_partition_base_pass_shared_across_pairs(self, partition_fleet):
        models, datasets = partition_fleet
        calls = [0] * len(models)

        def counting(assign, i):
            def wrapped(dataset):
                calls[i] += 1
                return assign(dataset)
            return wrapped

        wrapped_models = []
        for i, m in enumerate(models):
            structure = m.structure
            wrapped_models.append(
                DtModel(m.tree)  # fresh model, then patch its assigner
            )
            patched = type(structure)(
                cells=structure.cells,
                class_labels=structure.class_labels,
                assigner=counting(structure.assigner, i),
            )
            object.__setattr__(wrapped_models[-1], "_structure", patched)
        engine = FleetDeviationMatrix(wrapped_models, datasets)
        engine.exhaustive()
        # A GCR overlay assigns *both* datasets under *both* base
        # partitions, so each store's assigner must run once per
        # dataset (N = 3 passes). The memo removes the per-pair
        # repetition: naively each assigner runs 2 (N - 1) = 4 times.
        assert calls == [3, 3, 3]
        # Re-measuring is free: every pass is already memoised.
        engine2 = FleetDeviationMatrix(wrapped_models, datasets)
        engine2.exhaustive()
        assert calls == [3, 3, 3]

    def test_executors_agree(self, lits_fleet):
        models, datasets = lits_fleet
        serial = FleetDeviationMatrix(models, datasets).exhaustive()
        threaded = FleetDeviationMatrix(
            models, datasets, executor="thread"
        ).exhaustive()
        assert np.array_equal(serial.values, threaded.values)

    @pytest.mark.slow
    def test_process_executor_agrees(self, lits_fleet):
        from repro.stream.executor import ProcessExecutor

        models, datasets = lits_fleet
        serial = FleetDeviationMatrix(models, datasets).exhaustive()
        runner = ProcessExecutor(max_workers=2)
        try:
            engine = FleetDeviationMatrix(models, datasets, executor=runner)
            assert np.array_equal(engine.exhaustive().values, serial.values)
            assert engine.scan_counts() == [1, 1, 1, 1, 1]
        finally:
            runner.shutdown()

    def test_model_only_pairs_need_no_scan(self, lits_fleet):
        models, datasets = lits_fleet
        d = datasets[0]
        m = models[0]
        sels = m.structure.selectivities(d)
        twin = LitsModel(dict(zip(m.itemsets, sels)), 0.05, d.n_items)
        engine = FleetDeviationMatrix([m, twin], [d, d])
        result = engine.exhaustive()
        assert result.n_model_only == 1
        assert result.n_scanned == 0
        assert engine.scan_counts() == [0, 0]


class TestPruned:
    def test_pruned_agrees_with_exhaustive(self, lits_fleet):
        models, datasets = lits_fleet
        oracle = FleetDeviationMatrix(models, datasets).exhaustive().values
        engine = FleetDeviationMatrix(models, datasets)
        bounds = engine.bound_matrix()
        t = float(np.quantile(bounds[np.triu_indices(5, k=1)], 0.5))
        result = engine.pruned(t)
        assert result.n_pruned > 0
        # exact entries equal the oracle
        assert np.allclose(result.values[result.exact_mask],
                           oracle[result.exact_mask])
        # pruned entries majorise it (Theorem 4.2) while staying <= t
        assert (result.values >= oracle - 1e-9).all()
        assert (result.values[~result.exact_mask] <= t + 1e-12).all()
        # so every threshold decision matches the oracle's
        assert ((result.values <= t) == (oracle <= t)).all()

    def test_nothing_pruned_equals_exhaustive(self, lits_fleet):
        models, datasets = lits_fleet
        oracle = FleetDeviationMatrix(models, datasets).exhaustive()
        engine = FleetDeviationMatrix(models, datasets)
        result = engine.pruned(-1.0)  # below every bound: prune nothing
        assert result.n_pruned == 0
        assert np.array_equal(result.values, oracle.values)

    def test_components_at_threshold_match_exhaustive(self, lits_fleet):
        from repro.fleet import components

        models, datasets = lits_fleet
        oracle = FleetDeviationMatrix(models, datasets).exhaustive()
        engine = FleetDeviationMatrix(models, datasets)
        bounds = engine.bound_matrix()
        off = bounds[np.triu_indices(5, k=1)]
        for t in (float(np.min(off)), float(np.median(off)),
                  float(np.max(off))):
            pruned = engine.pruned(t)
            assert pruned.components() == components(
                oracle.values, t, names=oracle.names
            )

    def test_pruned_fills_skipped_entries_with_bounds(self, lits_fleet):
        models, datasets = lits_fleet
        engine = FleetDeviationMatrix(models, datasets)
        bounds = engine.bound_matrix()
        t = float(np.max(bounds))  # everything certified
        result = engine.pruned(t)
        assert result.n_pruned == result.n_pairs
        assert engine.scan_counts() == [0, 0, 0, 0, 0]
        off_diag = ~np.eye(5, dtype=bool)
        assert np.array_equal(result.values[off_diag], bounds[off_diag])
        assert not result.exact_mask[off_diag].any()

    def test_pruned_requires_lits(self, partition_fleet):
        models, datasets = partition_fleet
        engine = FleetDeviationMatrix(models, datasets)
        with pytest.raises(IncompatibleModelsError, match="lits"):
            engine.pruned(1.0)

    def test_pruned_requires_majorisable_f_g(self, lits_fleet):
        models, datasets = lits_fleet
        engine = FleetDeviationMatrix(models, datasets, f=SCALED)
        with pytest.raises(InvalidParameterError, match="f_a"):
            engine.pruned(1.0)

    def test_pruned_rejects_non_finite_threshold(self, lits_fleet):
        models, datasets = lits_fleet
        engine = FleetDeviationMatrix(models, datasets)
        with pytest.raises(InvalidParameterError, match="finite"):
            engine.pruned(float("nan"))


class TestValidation:
    def test_empty_fleet(self):
        with pytest.raises(InvalidParameterError, match="empty fleet"):
            FleetDeviationMatrix([], [])

    def test_misaligned_fleet(self, lits_fleet):
        models, datasets = lits_fleet
        with pytest.raises(InvalidParameterError, match="align"):
            FleetDeviationMatrix(models[:2], datasets[:3])

    def test_mixed_model_kinds(self, lits_fleet, partition_fleet):
        lits_models, lits_data = lits_fleet
        dt_models, dt_data = partition_fleet
        with pytest.raises(IncompatibleModelsError, match="one model kind"):
            FleetDeviationMatrix(
                [lits_models[0], dt_models[0]], [lits_data[0], dt_data[0]]
            )

    def test_mismatched_item_universes(self):
        d1 = generate_basket(100, n_items=20, avg_transaction_len=4, seed=1)
        d2 = generate_basket(100, n_items=30, avg_transaction_len=4, seed=2)
        m1 = LitsModel.mine(d1, 0.1, max_len=2)
        m2 = LitsModel.mine(d2, 0.1, max_len=2)
        with pytest.raises(IncompatibleModelsError, match="item universe"):
            FleetDeviationMatrix([m1, m2], [d1, d2])

    def test_duplicate_and_misaligned_names(self, lits_fleet):
        models, datasets = lits_fleet
        with pytest.raises(InvalidParameterError, match="unique"):
            FleetDeviationMatrix(models[:2], datasets[:2], names=["a", "a"])
        with pytest.raises(InvalidParameterError, match="align"):
            FleetDeviationMatrix(models[:2], datasets[:2], names=["a"])

    def test_unknown_store(self, lits_fleet):
        models, datasets = lits_fleet
        engine = FleetDeviationMatrix(models[:2], datasets[:2])
        with pytest.raises(InvalidParameterError, match="unknown store"):
            engine.pair("nope", 0)
        with pytest.raises(InvalidParameterError, match="out of range"):
            engine.pair(0, 5)

    def test_process_executor_rejected_for_partition(self, partition_fleet):
        models, datasets = partition_fleet
        engine = FleetDeviationMatrix(models, datasets, executor="process")
        with pytest.raises(InvalidParameterError, match="process"):
            engine.exhaustive()


class TestTinyFleets:
    def test_two_store_fleet_embeds_and_reports(self, lits_fleet):
        """n points embed in n-1 dims: a 2-store fleet must not crash
        the default k=2 embedding/report path (extra axes zero-pad)."""
        models, datasets = lits_fleet
        engine = FleetDeviationMatrix(models[:2], datasets[:2])
        result = engine.exhaustive()
        coords = result.embedding(k=2)
        assert coords.shape == (2, 2)
        assert np.allclose(coords[:, 1], 0.0)  # the padded axis
        d = abs(coords[0, 0] - coords[1, 0])
        assert d == pytest.approx(result.values[0, 1])
        report = result.to_report(k=2, n_groups=2)
        assert len(report["embedding"]) == 2
        with pytest.raises(InvalidParameterError, match=">= 1"):
            result.embedding(k=0)


class TestSingleStore:
    def test_single_store_fleet(self, lits_fleet):
        models, datasets = lits_fleet
        engine = FleetDeviationMatrix(models[:1], datasets[:1])
        for result in (engine.exhaustive(), engine.pruned(0.0)):
            assert result.values.tolist() == [[0.0]]
            assert result.exact_mask.tolist() == [[True]]
            assert result.n_pairs == 0
        assert engine.pruned(5.0).embedding(k=2).tolist() == [[0.0, 0.0]]
        assert engine.exhaustive().groups(1) == {0: ["store-0"]}
        with pytest.raises(InvalidParameterError, match="single-store"):
            engine.exhaustive().groups(2)


class TestIncrementalUpdate:
    def make_log_fleet(self):
        logs = []
        for seed in (1, 2, 3, 4):
            d = generate_basket(
                300, n_items=40, avg_transaction_len=5, n_patterns=30,
                avg_pattern_len=3 + (seed % 2), seed=seed,
            )
            logs.append(TransactionLog(40, list(d)))
        models = [lits_builder(lg) for lg in logs]
        return models, logs

    def test_update_recomputes_only_one_row(self):
        models, logs = self.make_log_fleet()
        engine = FleetDeviationMatrix(
            models, logs, model_builder=lits_builder
        )
        before = engine.exhaustive()
        pairs_before = engine.n_pair_computations
        extra = generate_basket(
            200, n_items=40, avg_transaction_len=5, n_patterns=30,
            avg_pattern_len=6, seed=99,
        )
        logs[2].append(list(extra))
        engine.update(2)
        after = engine.exhaustive()
        # only the updated store's 3 pairings were recomputed
        assert engine.n_pair_computations - pairs_before == 3
        untouched = [(0, 1), (0, 3), (1, 3)]
        for i, j in untouched:
            assert after.values[i, j] == before.values[i, j]
        assert not np.allclose(before.values[2], after.values[2])
        # and the result matches a from-scratch engine over the same fleet
        fresh = FleetDeviationMatrix(
            [lits_builder(lg) for lg in logs], logs
        ).exhaustive()
        assert np.allclose(after.values, fresh.values)

    def test_update_refreshes_bound_matrix_row(self):
        models, logs = self.make_log_fleet()
        engine = FleetDeviationMatrix(
            models, logs, model_builder=lits_builder
        )
        before = engine.bound_matrix().copy()
        logs[0].append([(1, 2, 3)] * 150)
        engine.update(0)
        after = engine.bound_matrix()
        assert not np.allclose(before[0], after[0])
        assert np.allclose(before[1:, 1:], after[1:, 1:])

    def test_grown_log_invalidates_counts_without_update(self):
        models, logs = self.make_log_fleet()
        engine = FleetDeviationMatrix(models, logs)
        engine.exhaustive()
        logs[1].append([(0, 1), (2, 3)] * 50)
        # No update(): models stay as mined, but the counts refresh, so
        # the matrix equals a fresh engine over the same (model, log) fleet.
        regrown = engine.exhaustive()
        fresh = FleetDeviationMatrix(models, logs).exhaustive()
        assert np.allclose(regrown.values, fresh.values)

    def test_grown_store_is_never_certified_by_stale_bounds(self):
        """A log that outgrew its model must not be pruned on old bounds.

        The delta* bound describes the rows the model was mined from;
        after an un-update()d append the exact deviation can cross the
        threshold even though the stale bound sits below it. Every pair
        involving the grown store is scanned, so pruned() keeps its
        decision-agreement guarantee.
        """
        models, logs = self.make_log_fleet()
        engine = FleetDeviationMatrix(models, logs)
        bounds = engine.bound_matrix().copy()
        t = float(bounds[0, 1]) + 1e-9  # certifies pair (0, 1) when fresh
        assert engine.pruned(t).exact_mask[0, 1] == np.False_
        # Drift store 0 hard, without update(): the old bound is stale.
        logs[0].append([(1, 2, 3, 4)] * 600)
        result = engine.pruned(t)
        assert result.exact_mask[0].all()  # all of store 0's pairs scanned
        oracle = engine.exhaustive()
        assert (
            (result.values <= t) == (oracle.values <= t)
        ).all()

    def test_grown_store_skips_stale_model_fast_path(self):
        """Identical-structure pairs re-scan once the log outgrew the model."""
        from repro.core.deviation import deviation_over_structure
        from repro.core.gcr import gcr

        d = generate_basket(
            300, n_items=30, avg_transaction_len=5, n_patterns=20,
            avg_pattern_len=3, seed=5,
        )
        log_a = TransactionLog(30, list(d))
        log_b = TransactionLog(30, list(d))
        m = lits_builder(log_a)
        sels = m.structure.selectivities(log_a)
        twin = LitsModel(dict(zip(m.itemsets, sels)), 0.05, 30)
        engine = FleetDeviationMatrix([m, twin], [log_a, log_b])
        assert engine.exhaustive().n_model_only == 1
        log_a.append([(7, 8, 9)] * 200)
        result = engine.exhaustive()
        assert result.n_model_only == 0  # stale store: measured by scan
        expected = deviation_over_structure(
            gcr(m.structure, twin.structure), log_a, log_b
        ).value
        assert result.values[0, 1] == pytest.approx(expected)

    def test_update_needs_model_or_builder(self):
        models, logs = self.make_log_fleet()
        engine = FleetDeviationMatrix(models, logs)
        with pytest.raises(InvalidParameterError, match="model_builder"):
            engine.update(0)
        replacement = lits_builder(logs[0])
        assert engine.update(0, model=replacement) is replacement

    def test_update_rejects_kind_change(self, partition_fleet):
        models, logs = self.make_log_fleet()
        engine = FleetDeviationMatrix(models, logs)
        dt_models, _ = partition_fleet
        with pytest.raises(IncompatibleModelsError, match="model kind"):
            engine.update(0, model=dt_models[0])

    def test_update_by_name(self):
        models, logs = self.make_log_fleet()
        names = ["n", "e", "s", "w"]
        engine = FleetDeviationMatrix(
            models, logs, names=names, model_builder=lits_builder
        )
        engine.exhaustive()
        logs[3].append([(5, 6)] * 40)
        engine.update("w")
        assert engine.pair("w", "n") == engine.pair(3, 0)


class TestResultExports:
    def test_csv_marks_pruned_entries(self, lits_fleet):
        models, datasets = lits_fleet
        engine = FleetDeviationMatrix(models, datasets)
        bounds = engine.bound_matrix()
        result = engine.pruned(float(np.max(bounds)))
        text = result.to_csv()
        lines = text.strip().splitlines()
        assert len(lines) == 6
        assert lines[0].startswith("store,")
        assert "*" in lines[1]

    def test_exhaustive_report_schema_is_call_order_independent(self, lits_fleet):
        models, datasets = lits_fleet
        fresh = FleetDeviationMatrix(models, datasets)
        warmed = FleetDeviationMatrix(models, datasets)
        warmed.bound_matrix()  # an earlier bounds call must not leak
        fresh_report = fresh.exhaustive().to_report()
        warmed_report = warmed.exhaustive().to_report()
        assert sorted(fresh_report) == sorted(warmed_report)
        assert "bounds" not in fresh_report
        # pruned results do carry the bounds they pruned with
        assert "bounds" in warmed.pruned(1.0).to_report()

    def test_report_is_json_able(self, lits_fleet):
        import json

        models, datasets = lits_fleet
        engine = FleetDeviationMatrix(models, datasets)
        result = engine.pruned(1.0)
        report = json.loads(json.dumps(result.to_report(n_groups=2)))
        assert report["pruning"]["n_pairs"] == 10
        assert len(report["matrix"]) == 5
        assert len(report["groups"]) == 2
