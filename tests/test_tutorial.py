"""docs/TUTORIAL.md stays executable: run every python snippet in order."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


@pytest.mark.slow
def test_tutorial_snippets_execute():
    text = TUTORIAL.read_text()
    snippets = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(snippets) >= 8
    namespace: dict = {}
    for i, code in enumerate(snippets):
        exec(compile(code, f"<tutorial-{i}>", "exec"), namespace)
