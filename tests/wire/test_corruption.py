"""Corruption fuzz: every mangled payload is rejected, loudly and typed.

A federated comparer consumes bytes from the network; the one outcome
the wire format must never produce is a *silently wrong* object. These
tests mangle valid payloads three ways and demand a
:class:`~repro.errors.WireFormatError` (never a crash, never success)
that names the offending section:

* truncation at **every** byte offset, for every golden fixture;
* single-bit flips (every byte position, plus random bits under
  Hypothesis) -- CRC32 detects all single-bit errors by construction;
* whole-section swaps and renames -- the per-kind canonical section
  order turns a transposed payload into an error, not transposed
  counts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import golden_objects as g
from repro.errors import WireFormatError
from repro.obs import MetricsRegistry, use_registry
from repro.wire import pack, pack_envelope, read_envelope, unpack

FIXTURES = {
    "lits_model": lambda: pack(g.lits_model()),
    "support_sketch": lambda: pack(g.support_sketch()),
    "dt_model": lambda: pack(g.dt_model()),
    "cluster_model": lambda: pack(g.cluster_model()),
    "partition_sketch": lambda: pack(
        g.dt_partition_sketch(), model=g.dt_model()
    ),
}


def _assert_rejected(payload: bytes) -> WireFormatError:
    with pytest.raises(WireFormatError) as info:
        unpack(payload)
    return info.value


class TestTruncation:
    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_every_prefix_is_rejected(self, name):
        payload = FIXTURES[name]()
        for cut in range(len(payload)):
            error = _assert_rejected(payload[:cut])
            assert error.section is not None, (
                f"{name} truncated at {cut}: error names no section"
            )

    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_trailing_garbage_is_rejected(self, name):
        error = _assert_rejected(FIXTURES[name]() + b"\x00")
        assert error.section == "trailer"


class TestBitFlips:
    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_one_flip_per_byte_is_rejected(self, name):
        payload = FIXTURES[name]()
        for offset in range(len(payload)):
            flipped = bytearray(payload)
            flipped[offset] ^= 1 << (offset % 8)
            error = _assert_rejected(bytes(flipped))
            assert error.section is not None, (
                f"{name} flipped at byte {offset}: error names no section"
            )

    @given(
        name=st.sampled_from(sorted(FIXTURES)),
        position=st.integers(min_value=0),
        bit=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=150, deadline=None)
    def test_random_flip_is_rejected(self, name, position, bit):
        payload = bytearray(FIXTURES[name]())
        payload[position % len(payload)] ^= 1 << bit
        _assert_rejected(bytes(payload))

    def test_checksum_failure_is_counted(self):
        payload = bytearray(FIXTURES["lits_model"]())
        payload[-10] ^= 0x40  # inside the last section's body
        registry = MetricsRegistry()
        with use_registry(registry):
            error = _assert_rejected(bytes(payload))
        assert "checksum mismatch" in str(error)
        counters = registry.snapshot()["counters"]
        assert counters.get("wire.checksum_failures", 0) >= 1


class TestSectionTampering:
    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_any_section_swap_is_rejected(self, name):
        payload = FIXTURES[name]()
        envelope = read_envelope(payload)
        sections = list(envelope.sections)
        if len(sections) < 2:
            pytest.skip("single-section payload: nothing to swap")
        for i in range(len(sections)):
            for j in range(i + 1, len(sections)):
                swapped = list(sections)
                swapped[i], swapped[j] = swapped[j], swapped[i]
                # re-framed with valid CRCs: only the canonical order
                # check can catch this
                error = _assert_rejected(
                    pack_envelope(envelope.kind, swapped)
                )
                assert error.section in {
                    sections[i][0], sections[j][0]
                }, f"{name}: swap ({i},{j}) blamed {error.section!r}"

    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_renamed_section_is_rejected(self, name):
        payload = FIXTURES[name]()
        envelope = read_envelope(payload)
        sections = list(envelope.sections)
        sections[0] = ("bogus", sections[0][1])
        error = _assert_rejected(pack_envelope(envelope.kind, sections))
        assert error.section == "bogus"

    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_dropped_section_is_rejected(self, name):
        payload = FIXTURES[name]()
        envelope = read_envelope(payload)
        _assert_rejected(pack_envelope(envelope.kind, envelope.sections[1:]))

    def test_cross_kind_body_transplant_is_rejected(self):
        # a support-sketch's sections framed under the lits-model kind:
        # every CRC passes, but "counts" is not a lits section
        sketch_envelope = read_envelope(FIXTURES["support_sketch"]())
        model_envelope = read_envelope(FIXTURES["lits_model"]())
        error = _assert_rejected(
            pack_envelope(model_envelope.kind, sketch_envelope.sections)
        )
        assert error.section == "counts"
