"""Hand-built objects behind the golden wire fixtures.

Everything here is constructed literally -- no miner, no fitter, no RNG
-- so the committed golden bytes pin the *wire format* and nothing else.
A change in mining internals cannot disturb these fixtures; only a
change to the serialization itself can, and that is exactly what the
golden suite must catch.

``tests/wire/make_golden.py`` writes the fixtures from these builders;
``tests/wire/test_golden.py`` decodes the committed bytes and checks
them against the same builders.
"""

from __future__ import annotations

import numpy as np

from repro.core.attribute import Attribute, AttributeKind, AttributeSpace, numeric
from repro.core.cluster_model import ClusterModel
from repro.core.dtree_model import DtModel
from repro.core.lits import LitsModel
from repro.data.tabular import TabularDataset
from repro.data.transactions import TransactionDataset
from repro.mining.cluster.grid import Grid, GridClustering
from repro.mining.tree.splits import CategoricalSplit, NumericSplit
from repro.mining.tree.tree import DecisionTree, Node
from repro.stream.sketch import PartitionSketch, SupportSketch

#: (age, salary, score) -- score is unbounded, pinning the signed-"inf"
#: bound encoding inside the golden bytes; colour is categorical,
#: pinning the categorical-split and categorical-attribute paths.
DT_SPACE = AttributeSpace(
    attributes=(
        numeric("age", 0, 100),
        numeric("salary", 0, 200_000),
        numeric("score"),  # [-inf, inf)
        Attribute("colour", AttributeKind.CATEGORICAL, values=(0.0, 1.0, 2.0)),
    ),
    class_labels=(0, 1),
)

#: The 2-attribute space of the paper's figures, for the cluster grid.
GRID_SPACE = AttributeSpace(
    attributes=(numeric("age", 0, 100), numeric("salary", 0, 200_000)),
    class_labels=(0, 1),
)


def lits_model() -> LitsModel:
    """Four itemsets over a 5-item universe, supports picked by hand."""
    return LitsModel(
        {
            frozenset({0}): 0.6,
            frozenset({1}): 0.5,
            frozenset({2}): 0.35,
            frozenset({0, 1}): 0.3,
        },
        min_support=0.25,
        n_items=5,
    )


def transactions() -> TransactionDataset:
    """Ten fixed transactions over the 5-item universe."""
    txns = [
        (0, 1),
        (0, 1, 2),
        (0,),
        (1, 2),
        (2,),
        (0, 1),
        (3,),
        (0, 2, 3),
        (1,),
        (0, 1, 3),
    ]
    return TransactionDataset(txns, n_items=5)


def support_sketch() -> SupportSketch:
    """The lits-model's itemsets counted over the fixed transactions."""
    return SupportSketch.from_dataset(transactions(), lits_model().itemsets)


def dt_model() -> DtModel:
    """A literal 4-leaf tree: numeric root, one categorical split."""
    root = Node(
        class_counts=np.array([40, 40]),
        split=NumericSplit("age", 30.0, 1.0),
        left=Node(
            class_counts=np.array([20, 10]),
            split=CategoricalSplit("colour", frozenset({0.0, 2.0}), 0.5),
            left=Node(class_counts=np.array([15, 5])),
            right=Node(class_counts=np.array([5, 5])),
        ),
        right=Node(
            class_counts=np.array([20, 30]),
            split=NumericSplit("salary", 100_000.0, 0.75),
            left=Node(class_counts=np.array([5, 20])),
            right=Node(class_counts=np.array([15, 10])),
        ),
    )
    return DtModel(DecisionTree(space=DT_SPACE, root=root))


def dt_dataset() -> TabularDataset:
    """Eight fixed rows over (age, salary, score, colour)."""
    X = np.array(
        [
            [25.0, 50_000.0, -1.5, 0.0],
            [25.0, 90_000.0, 0.25, 1.0],
            [28.0, 40_000.0, 3.0, 2.0],
            [40.0, 80_000.0, -0.5, 1.0],
            [45.0, 120_000.0, 2.0, 0.0],
            [60.0, 110_000.0, 1.0, 2.0],
            [70.0, 95_000.0, -2.0, 1.0],
            [35.0, 150_000.0, 0.0, 0.0],
        ]
    )
    y = np.array([0, 1, 0, 1, 1, 0, 1, 0], dtype=np.int64)
    return TabularDataset(DT_SPACE, X, y)


def dt_partition_sketch() -> PartitionSketch:
    """The fixed rows counted over the literal tree's partition."""
    return PartitionSketch.from_dataset(dt_dataset(), dt_model().structure)


def cluster_model() -> ClusterModel:
    """A literal 2x2 grid clustering: cells 0 and 3 dense, two clusters."""
    grid = Grid(
        GRID_SPACE,
        ("age", "salary"),
        {"age": np.array([50.0]), "salary": np.array([100_000.0])},
    )
    clustering = GridClustering(
        grid=grid,
        densities=np.array([0.4, 0.1, 0.2, 0.3]),
        dense_cells=np.array([0, 3]),
        cluster_of_cell={0: 0, 3: 1},
        n_clusters=2,
    )
    return ClusterModel(clustering)


def grid_dataset() -> TabularDataset:
    """Six fixed rows over (age, salary)."""
    X = np.array(
        [
            [25.0, 50_000.0],
            [30.0, 150_000.0],
            [45.0, 90_000.0],
            [60.0, 40_000.0],
            [75.0, 120_000.0],
            [80.0, 180_000.0],
        ]
    )
    y = np.array([0, 1, 0, 1, 0, 1], dtype=np.int64)
    return TabularDataset(GRID_SPACE, X, y)


def cluster_partition_sketch() -> PartitionSketch:
    """The fixed rows counted over the grid clustering's partition."""
    return PartitionSketch.from_dataset(grid_dataset(), cluster_model().structure)
