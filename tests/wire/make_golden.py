"""Regenerate the committed golden wire fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/wire/make_golden.py

Only run this when the wire format version is deliberately bumped: the
whole point of ``tests/wire/golden/`` is that the committed v1 bytes
never change. The two malformed fixtures are byte-patched from a valid
envelope (the header is not checksummed, so a future-version or
unknown-kind header is otherwise well-formed -- exactly the payload a
newer producer would emit).
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import golden_objects as g  # noqa: E402

from repro.wire import pack, payload_info  # noqa: E402

GOLDEN = Path(__file__).parent / "golden"


def _patched(payload: bytes, offset: int, value: int) -> bytes:
    out = bytearray(payload)
    out[offset] = value
    return bytes(out)


def main() -> None:
    GOLDEN.mkdir(exist_ok=True)
    fixtures: dict[str, bytes] = {
        "lits_model.bin": pack(g.lits_model()),
        "support_sketch.bin": pack(g.support_sketch()),
        "dt_model.bin": pack(g.dt_model()),
        "cluster_model.bin": pack(g.cluster_model()),
        "partition_sketch_dt.bin": pack(
            g.dt_partition_sketch(), model=g.dt_model()
        ),
        "partition_sketch_cluster.bin": pack(
            g.cluster_partition_sketch(), model=g.cluster_model()
        ),
    }
    # header layout: magic[0:4] | version u16 [4:6] | kind u8 [6]
    base = fixtures["lits_model.bin"]
    fixtures["unknown_version.bin"] = _patched(base, 4, 2)
    fixtures["unknown_kind.bin"] = _patched(base, 6, 9)

    expected: dict[str, dict] = {}
    for name, payload in sorted(fixtures.items()):
        (GOLDEN / name).write_bytes(payload)
        entry: dict = {
            "sha256": hashlib.sha256(payload).hexdigest(),
            "total_bytes": len(payload),
        }
        if not name.startswith("unknown_"):
            entry.update(payload_info(payload))
        expected[name] = entry
        print(f"{name}: {len(payload)} bytes")
    (GOLDEN / "expected.json").write_text(
        json.dumps(expected, indent=2, sort_keys=True) + "\n"
    )


if __name__ == "__main__":
    main()
