"""Hypothesis properties: ``unpack(pack(x)) == x``, for any shape of x.

The golden suite pins the v1 bytes of a handful of known objects; this
suite pins the *codec algebra* over arbitrary objects:

* round trip -- packing then unpacking reproduces the object exactly
  (sketch equality, model canonical-dict equality), including empty
  sketches, the empty itemset, single-region structures, unbounded
  attribute domains, and arbitrary float64 supports/thresholds;
* determinism -- equal objects pack to byte-identical payloads, and
  ``pack(unpack(p)) == p``;
* merge transport -- merging two unpacked sketches is bit-identical to
  merging the in-memory originals, so a federated merge of shipped
  shards equals the single-site merge.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import golden_objects as g
from repro.core.lits import LitsModel
from repro.data.model_io import dt_model_to_dict, lits_model_to_dict
from repro.stream.sketch import PartitionSketch, SupportSketch
from repro.wire import pack, unpack, unpack_partition_payload

N_ITEMS = 9

transactions_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=N_ITEMS - 1), max_size=5),
    max_size=40,
)

#: Arbitrary probe collections -- possibly empty, possibly holding the
#: empty itemset (supported by everything).
itemsets_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=N_ITEMS - 1), max_size=4),
    max_size=12,
)

supports_strategy = st.floats(
    min_value=0.0,
    max_value=1.0,
    exclude_min=True,
    allow_nan=False,
)


class TestSupportSketchRoundTrip:
    @given(txns=transactions_strategy, itemsets=itemsets_strategy)
    @settings(max_examples=60, deadline=None)
    def test_unpack_pack_is_identity(self, txns, itemsets):
        sketch = SupportSketch.from_transactions(txns, itemsets, N_ITEMS)
        payload = pack(sketch)
        decoded = unpack(payload)
        assert decoded == sketch
        assert decoded.n_transactions == sketch.n_transactions
        assert pack(decoded) == payload

    @given(
        txns1=transactions_strategy,
        txns2=transactions_strategy,
        itemsets=itemsets_strategy,
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_of_unpacked_equals_in_memory_merge(
        self, txns1, txns2, itemsets
    ):
        a = SupportSketch.from_transactions(txns1, itemsets, N_ITEMS)
        b = SupportSketch.from_transactions(txns2, itemsets, N_ITEMS)
        shipped = unpack(pack(a)) + unpack(pack(b))
        local = a + b
        assert shipped == local
        np.testing.assert_array_equal(shipped.counts, local.counts)
        assert pack(shipped) == pack(local)

    def test_empty_sketch_round_trips(self):
        empty = SupportSketch.empty([], N_ITEMS)
        assert unpack(pack(empty)) == empty
        also_empty = SupportSketch.empty([[0], [0, 1]], N_ITEMS)
        assert unpack(pack(also_empty)) == also_empty


@st.composite
def lits_models(draw):
    itemsets = draw(
        st.sets(
            st.frozensets(
                st.integers(min_value=0, max_value=N_ITEMS - 1),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=10,
        )
    )
    supports = {s: draw(supports_strategy) for s in itemsets}
    min_support = draw(
        st.floats(
            min_value=0.0, max_value=1.0, exclude_min=True, allow_nan=False
        )
    )
    return LitsModel(supports, min_support=min_support, n_items=N_ITEMS)


class TestLitsModelRoundTrip:
    @given(model=lits_models())
    @settings(max_examples=60, deadline=None)
    def test_unpack_pack_is_identity(self, model):
        payload = pack(model)
        decoded = unpack(payload)
        # canonical-dict equality covers itemsets, exact float64
        # supports, min_support, and the universe size
        assert lits_model_to_dict(decoded) == lits_model_to_dict(model)
        assert pack(decoded) == payload


@st.composite
def dt_node_dicts(draw, depth=0):
    """Arbitrary small trees in the canonical dict form."""
    counts = draw(
        st.lists(
            st.integers(min_value=0, max_value=500), min_size=2, max_size=2
        )
    )
    node = {"class_counts": counts}
    if depth < 3 and draw(st.booleans()):
        kind = draw(st.sampled_from(["numeric", "categorical"]))
        if kind == "numeric":
            attribute = draw(st.sampled_from(["age", "salary", "score"]))
            node["split"] = {
                "type": "numeric",
                "attribute": attribute,
                "threshold": draw(
                    st.floats(
                        allow_nan=False, allow_infinity=False, width=64
                    )
                ),
                "gain": draw(
                    st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
                ),
            }
        else:
            node["split"] = {
                "type": "categorical",
                "attribute": "colour",
                "left_values": sorted(
                    draw(
                        st.sets(
                            st.sampled_from([0.0, 1.0, 2.0]),
                            min_size=1,
                            max_size=2,
                        )
                    )
                ),
                "gain": draw(
                    st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
                ),
            }
        node["left"] = draw(dt_node_dicts(depth=depth + 1))
        node["right"] = draw(dt_node_dicts(depth=depth + 1))
    return node


@st.composite
def dt_models(draw):
    from repro.data.model_io import dt_model_from_dict

    return dt_model_from_dict(
        {
            "kind": "dt-model",
            "space": {
                "attributes": [
                    {
                        "name": "age",
                        "kind": "numeric",
                        "low": 0.0,
                        "high": 100.0,
                        "values": [],
                    },
                    {
                        "name": "salary",
                        "kind": "numeric",
                        "low": 0.0,
                        "high": 200000.0,
                        "values": [],
                    },
                    {
                        "name": "score",
                        "kind": "numeric",
                        "low": "-inf",
                        "high": "inf",
                        "values": [],
                    },
                    {
                        "name": "colour",
                        "kind": "categorical",
                        "low": "-inf",
                        "high": "inf",
                        "values": [0.0, 1.0, 2.0],
                    },
                ],
                "class_labels": [0, 1],
            },
            "root": draw(dt_node_dicts()),
        }
    )


class TestDtModelRoundTrip:
    @given(model=dt_models())
    @settings(max_examples=40, deadline=None)
    def test_unpack_pack_is_identity(self, model):
        payload = pack(model)
        decoded = unpack(payload)
        assert dt_model_to_dict(decoded) == dt_model_to_dict(model)
        assert pack(decoded) == payload


@st.composite
def partition_sketches(draw):
    """Arbitrary counts over the golden dt/cluster structures --
    including the single-cell structure of a split-less root."""
    which = draw(st.sampled_from(["dt", "cluster", "stump"]))
    if which == "dt":
        model = g.dt_model()
    elif which == "cluster":
        model = g.cluster_model()
    else:
        from repro.data.model_io import dt_model_from_dict

        model = dt_model_from_dict(
            {
                "kind": "dt-model",
                "space": {
                    "attributes": [
                        {
                            "name": "age",
                            "kind": "numeric",
                            "low": 0.0,
                            "high": 100.0,
                            "values": [],
                        }
                    ],
                    "class_labels": [0, 1],
                },
                "root": {"class_counts": [1, 1]},
            }
        )
    n_regions = len(model.structure.regions)
    n_rows = draw(st.integers(min_value=0, max_value=1000))
    counts = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_rows),
            min_size=n_regions,
            max_size=n_regions,
        )
    )
    sketch = PartitionSketch(
        model.structure, np.asarray(counts, dtype=np.int64), n_rows
    )
    return sketch, model


class TestPartitionSketchRoundTrip:
    @given(pair=partition_sketches())
    @settings(max_examples=40, deadline=None)
    def test_unpack_pack_is_identity(self, pair):
        sketch, model = pair
        payload = pack(sketch, model=model)
        decoded, decoded_model = unpack_partition_payload(payload)
        assert decoded == sketch
        assert decoded.key == sketch.key
        assert pack(decoded, model=decoded_model) == payload

    @given(pair=partition_sketches(), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_merge_of_unpacked_equals_in_memory_merge(self, pair, data):
        a, model = pair
        other_counts = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=a.n_rows),
                min_size=len(a.counts),
                max_size=len(a.counts),
            )
        )
        b = PartitionSketch(
            a.plan, np.asarray(other_counts, dtype=np.int64), a.n_rows
        )
        shipped = unpack(pack(a, model=model)) + unpack(pack(b, model=model))
        local = a + b
        np.testing.assert_array_equal(shipped.counts, local.counts)
        assert shipped.n_rows == local.n_rows
