"""Golden-file suite: the committed v1 payloads are frozen.

The fixtures under ``golden/`` were written once by ``make_golden.py``
from the hand-built objects in ``golden_objects.py`` and committed.
These tests pin three promises against those bytes:

* **stability** -- today's ``unpack`` decodes yesterday's payloads to
  exactly the objects that produced them (a format change cannot slip
  through: the committed bytes never regenerate on CI);
* **determinism** -- repacking the decoded object, or packing a freshly
  built equal object, reproduces the committed bytes byte-for-byte;
* **refusal** -- a payload from a future format version, or with an
  unknown kind tag, raises a typed ``WireFormatError`` naming the
  header, instead of being misparsed into garbage counts.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import golden_objects as g
import numpy as np
import pytest

from repro.data.model_io import (
    cluster_model_to_dict,
    dt_model_to_dict,
    lits_model_to_dict,
)
from repro.errors import WireFormatError
from repro.wire import (
    kind_of,
    pack,
    payload_info,
    unpack,
    unpack_partition_payload,
)

GOLDEN = Path(__file__).parent / "golden"
EXPECTED = json.loads((GOLDEN / "expected.json").read_text())

#: fixture file -> (builder of the equal object, its pack() kwargs)
BUILDERS = {
    "lits_model.bin": (g.lits_model, {}),
    "support_sketch.bin": (g.support_sketch, {}),
    "dt_model.bin": (g.dt_model, {}),
    "cluster_model.bin": (g.cluster_model, {}),
    "partition_sketch_dt.bin": (
        g.dt_partition_sketch,
        {"model": g.dt_model},
    ),
    "partition_sketch_cluster.bin": (
        g.cluster_partition_sketch,
        {"model": g.cluster_model},
    ),
}


def _golden_bytes(name: str) -> bytes:
    return (GOLDEN / name).read_bytes()


def _repack(name: str) -> bytes:
    builder, kwargs = BUILDERS[name]
    return pack(builder(), **{k: v() for k, v in kwargs.items()})


class TestCommittedBytes:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_fixture_is_intact(self, name):
        payload = _golden_bytes(name)
        assert hashlib.sha256(payload).hexdigest() == EXPECTED[name]["sha256"]
        assert len(payload) == EXPECTED[name]["total_bytes"]

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_payload_info_matches_manifest(self, name):
        info = payload_info(_golden_bytes(name))
        assert info["kind"] == EXPECTED[name]["kind"]
        assert info["version"] == 1
        assert info["sections"] == EXPECTED[name]["sections"]

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_fresh_pack_reproduces_committed_bytes(self, name):
        # equal objects -> byte-identical payloads, across sessions
        assert _repack(name) == _golden_bytes(name)


class TestDecode:
    def test_lits_model(self):
        model = unpack(_golden_bytes("lits_model.bin"))
        assert lits_model_to_dict(model) == lits_model_to_dict(g.lits_model())

    def test_support_sketch(self):
        sketch = unpack(_golden_bytes("support_sketch.bin"))
        assert sketch == g.support_sketch()
        assert sketch.n_transactions == 10

    def test_dt_model(self):
        model = unpack(_golden_bytes("dt_model.bin"))
        assert dt_model_to_dict(model) == dt_model_to_dict(g.dt_model())
        # the unbounded attribute survives the signed-"inf" encoding
        score = model.tree.space.attribute("score")
        assert np.isinf(score.low) and score.low < 0
        assert np.isinf(score.high) and score.high > 0

    def test_cluster_model(self):
        model = unpack(_golden_bytes("cluster_model.bin"))
        assert cluster_model_to_dict(model) == cluster_model_to_dict(
            g.cluster_model()
        )

    @pytest.mark.parametrize(
        "name, sketch_builder, model_dict",
        [
            ("partition_sketch_dt.bin", g.dt_partition_sketch, dt_model_to_dict),
            (
                "partition_sketch_cluster.bin",
                g.cluster_partition_sketch,
                cluster_model_to_dict,
            ),
        ],
    )
    def test_partition_sketches(self, name, sketch_builder, model_dict):
        sketch, model = unpack_partition_payload(_golden_bytes(name))
        reference = sketch_builder()
        assert sketch == reference
        assert sketch.key == reference.key
        # the embedded model round-trips too
        builder = BUILDERS[name][1]["model"]
        assert model_dict(model) == model_dict(builder())

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_decode_then_repack_is_identity(self, name):
        payload = _golden_bytes(name)
        if name.startswith("partition_sketch"):
            sketch, model = unpack_partition_payload(payload)
            assert pack(sketch, model=model) == payload
        else:
            assert pack(unpack(payload)) == payload


class TestRefusal:
    def test_future_version_is_rejected_not_guessed(self):
        payload = _golden_bytes("unknown_version.bin")
        with pytest.raises(WireFormatError, match="version 2") as info:
            unpack(payload)
        assert info.value.section == "header"
        with pytest.raises(WireFormatError, match="version 2"):
            kind_of(payload)

    def test_unknown_kind_is_rejected(self):
        payload = _golden_bytes("unknown_kind.bin")
        with pytest.raises(WireFormatError, match="kind code 9") as info:
            unpack(payload)
        assert info.value.section == "header"
        with pytest.raises(WireFormatError, match="kind code 9"):
            payload_info(payload)
