"""reprolint self-checks: a fixture corpus per rule, plus the real tree.

Every RL rule gets at least one positive (the bad pattern fires) and one
negative (the blessed idiom stays silent) snippet, the disable escape
hatch is exercised with and without a reason, and the suite ends by
asserting the actual ``src/`` + ``benchmarks/`` trees are clean -- the
same gate CI runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tools.reprolint import (
    REASONLESS_CODE,
    RULE_DOCS,
    RULES,
    SYNTAX_CODE,
    lint_paths,
    lint_source,
)
from tools.reprolint.cli import main


def codes(source: str, path: str = "pkg/module.py") -> list[str]:
    return [f.code for f in lint_source(source, path, RULES)]


HOT = "src/repro/stream/module.py"  # any /stream/ path counts as hot


# --------------------------------------------------------------------- #
# RL001 -- unseeded randomness
# --------------------------------------------------------------------- #


class TestRL001:
    def test_unseeded_default_rng_fires(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(src) == ["RL001"]

    def test_seeded_default_rng_is_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert codes(src) == []

    def test_seed_keyword_is_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(seed=s)\n"
        assert codes(src) == []

    def test_legacy_global_state_fires_even_when_seeded(self):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert codes(src) == ["RL001"]

    def test_legacy_sampling_call_fires(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert codes(src) == ["RL001"]

    def test_respects_numpy_import_alias(self):
        src = "import numpy as xp\nrng = xp.random.default_rng()\n"
        assert codes(src) == ["RL001"]

    def test_from_numpy_random_import(self):
        src = (
            "from numpy.random import default_rng\n"
            "rng = default_rng()\n"
        )
        assert codes(src) == ["RL001"]

    def test_resolve_rng_warn_path_is_blessed(self):
        src = (
            "import numpy as np\n"
            "def _resolve_rng(rng, seed, caller):\n"
            "    return np.random.default_rng()\n"
        )
        assert codes(src) == []

    def test_unrelated_module_random_is_clean(self):
        src = "import random\nrandom.seed(0)\n"
        assert codes(src) == []


# --------------------------------------------------------------------- #
# RL002 -- unguarded merges
# --------------------------------------------------------------------- #


class TestRL002:
    def test_unguarded_sketch_add_fires(self):
        src = (
            "class SupportSketch:\n"
            "    def __add__(self, other):\n"
            "        return type(self)(self.counts + other.counts)\n"
        )
        assert codes(src) == ["RL002"]

    def test_check_mergeable_guard_is_clean(self):
        src = (
            "class SupportSketch:\n"
            "    def __add__(self, other):\n"
            "        self._check_mergeable(other)\n"
            "        return type(self)(self.counts + other.counts)\n"
        )
        assert codes(src) == []

    def test_counts_key_comparison_is_clean(self):
        src = (
            "class PartitionSketch:\n"
            "    def merge(self, other):\n"
            "        if self.counts_key != other.counts_key:\n"
            "            raise ValueError('incompatible')\n"
            "        return type(self)(self.counts + other.counts)\n"
        )
        assert codes(src) == []

    def test_delegation_to_guarded_sibling_is_clean(self):
        src = (
            "class SupportSketch:\n"
            "    def __add__(self, other):\n"
            "        self._check_mergeable(other)\n"
            "        return type(self)(self.counts + other.counts)\n"
            "    def merge(self, other):\n"
            "        return self.__add__(other)\n"
        )
        assert codes(src) == []

    def test_non_sketch_class_is_exempt(self):
        src = (
            "class Interval:\n"
            "    def __add__(self, other):\n"
            "        return Interval(self.lo + other.lo, self.hi + other.hi)\n"
        )
        assert codes(src) == []


# --------------------------------------------------------------------- #
# RL003 -- executor lifecycle
# --------------------------------------------------------------------- #


class TestRL003:
    def test_unreleased_pool_fires(self):
        src = (
            "def fan(payloads):\n"
            "    pool = ThreadPoolExecutor(4)\n"
            "    return list(pool.map(work, payloads))\n"
        )
        assert codes(src) == ["RL003"]

    def test_with_statement_is_clean(self):
        src = (
            "def fan(payloads):\n"
            "    with ThreadPoolExecutor(4) as pool:\n"
            "        return list(pool.map(work, payloads))\n"
        )
        assert codes(src) == []

    def test_shutdown_in_scope_is_clean(self):
        src = (
            "def fan(payloads):\n"
            "    pool = ProcessPoolExecutor(4)\n"
            "    try:\n"
            "        return list(pool.map(work, payloads))\n"
            "    finally:\n"
            "        pool.shutdown()\n"
        )
        assert codes(src) == []

    def test_getattr_shutdown_idiom_is_clean(self):
        src = (
            "def fan(executor, payloads):\n"
            "    runner = get_executor(executor)\n"
            "    try:\n"
            "        return runner.map(work, payloads)\n"
            "    finally:\n"
            "        shutdown = getattr(runner, 'shutdown', None)\n"
            "        if shutdown is not None:\n"
            "            shutdown()\n"
        )
        assert codes(src) == []

    def test_serial_backend_has_nothing_to_release(self):
        src = (
            "def fan(payloads):\n"
            "    runner = get_executor('serial')\n"
            "    return runner.map(work, payloads)\n"
        )
        assert codes(src) == []

    def test_self_assignment_needs_a_close_method(self):
        src = (
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self.executor = get_executor('thread')\n"
        )
        assert codes(src) == ["RL003"]

    def test_self_assignment_with_close_is_clean(self):
        src = (
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self.executor = get_executor('thread')\n"
            "    def close(self):\n"
            "        self.executor.shutdown()\n"
        )
        assert codes(src) == []


# --------------------------------------------------------------------- #
# RL004 -- per-row loops in hot modules
# --------------------------------------------------------------------- #


class TestRL004:
    def test_row_loop_in_hot_module_fires(self):
        src = (
            "def scan(transactions):\n"
            "    for t in transactions:\n"
            "        update(t)\n"
        )
        assert codes(src, HOT) == ["RL004"]

    def test_range_len_dataset_fires(self):
        src = (
            "def scan(dataset):\n"
            "    for i in range(len(dataset)):\n"
            "        update(dataset[i])\n"
        )
        assert codes(src, HOT) == ["RL004"]

    def test_attribute_rows_loop_fires(self):
        src = (
            "def scan(log):\n"
            "    for row in log.rows:\n"
            "        update(row)\n"
        )
        assert codes(src, HOT) == ["RL004"]

    def test_same_loop_outside_hot_modules_is_clean(self):
        src = (
            "def scan(transactions):\n"
            "    for t in transactions:\n"
            "        update(t)\n"
        )
        assert codes(src, "src/repro/data/io.py") == []

    def test_oracle_suffix_is_exempt(self):
        src = (
            "def support_count_loop(transactions):\n"
            "    for t in transactions:\n"
            "        update(t)\n"
        )
        assert codes(src, HOT) == []

    def test_oracle_docstring_is_exempt(self):
        src = (
            "def slow_reference(transactions):\n"
            '    """Property-test oracle; deliberately row-wise."""\n'
            "    for t in transactions:\n"
            "        update(t)\n"
        )
        assert codes(src, HOT) == []

    def test_non_row_loops_are_clean(self):
        src = (
            "def measure(datasets, models):\n"
            "    for d in datasets:\n"
            "        for m in models:\n"
            "            measure_pair(d, m)\n"
            "    for b in range(w.shape[0]):\n"
            "        fold(b)\n"
        )
        assert codes(src, HOT) == []


# --------------------------------------------------------------------- #
# RL005 -- mutable defaults and ndarray-keyed memos
# --------------------------------------------------------------------- #


class TestRL005:
    def test_mutable_list_default_fires(self):
        src = "def f(acc=[]):\n    acc.append(1)\n"
        assert codes(src) == ["RL005"]

    def test_mutable_dict_and_set_defaults_fire(self):
        src = "def f(memo={}, seen=set()):\n    pass\n"
        assert codes(src) == ["RL005", "RL005"]

    def test_none_default_is_clean(self):
        src = "def f(acc=None):\n    acc = [] if acc is None else acc\n"
        assert codes(src) == []

    def test_ndarray_keyed_memo_fires(self):
        src = (
            "import numpy as np\n"
            "def f(key: np.ndarray):\n"
            "    memo = {}\n"
            "    memo[key] = 1\n"
        )
        assert codes(src) == ["RL005"]

    def test_ndarray_keyed_get_fires(self):
        src = (
            "import numpy as np\n"
            "def f(key: np.ndarray):\n"
            "    memo = {}\n"
            "    return memo.get(key)\n"
        )
        assert codes(src) == ["RL005"]

    def test_inferred_array_assignment_fires(self):
        src = (
            "import numpy as np\n"
            "def f(memo):\n"
            "    memo = {}\n"
            "    mask = np.zeros(8)\n"
            "    memo[mask] = 1\n"
        )
        assert codes(src) == ["RL005"]

    def test_stable_keys_are_clean(self):
        src = (
            "def f(sketch, arr):\n"
            "    memo = {}\n"
            "    memo[sketch.counts_key] = 1\n"
            "    memo[arr.tobytes()] = 2\n"
            "    memo[id(arr)] = 3\n"
        )
        assert codes(src) == []


# --------------------------------------------------------------------- #
# RL006 -- unpicklable process workers
# --------------------------------------------------------------------- #


class TestRL006:
    def test_lambda_on_process_pool_fires(self):
        src = (
            "def fan(payloads):\n"
            "    pool = ProcessPoolExecutor(4)\n"
            "    try:\n"
            "        return list(pool.map(lambda p: p + 1, payloads))\n"
            "    finally:\n"
            "        pool.shutdown()\n"
        )
        assert codes(src) == ["RL006"]

    def test_closure_on_process_backend_fires(self):
        src = (
            "def fan(payloads):\n"
            "    runner = get_executor('process')\n"
            "    def work(p):\n"
            "        return p + 1\n"
            "    try:\n"
            "        return runner.map(work, payloads)\n"
            "    finally:\n"
            "        runner.shutdown()\n"
        )
        assert codes(src) == ["RL006"]

    def test_top_level_worker_is_clean(self):
        src = (
            "def work(p):\n"
            "    return p + 1\n"
            "def fan(payloads):\n"
            "    runner = get_executor('process')\n"
            "    try:\n"
            "        return runner.map(work, payloads)\n"
            "    finally:\n"
            "        runner.shutdown()\n"
        )
        assert codes(src) == []

    def test_lambda_on_thread_backend_is_clean(self):
        src = (
            "def fan(payloads):\n"
            "    with ThreadPoolExecutor(4) as pool:\n"
            "        return list(pool.map(lambda p: p + 1, payloads))\n"
        )
        assert codes(src) == []

    def test_lambda_beside_process_executor_kwarg_fires(self):
        src = "fan_blocks(lambda p: p + 1, executor='process')\n"
        assert codes(src) == ["RL006"]

    def test_named_function_beside_process_kwarg_is_clean(self):
        src = "fan_blocks(work, executor='process')\n"
        assert codes(src) == []


# --------------------------------------------------------------------- #
# RL007 -- spans must be entered
# --------------------------------------------------------------------- #


class TestRL007:
    def test_unentered_span_call_fires(self):
        src = (
            "def work(registry):\n"
            "    registry.span('fleet.scan')\n"
            "    do_work()\n"
        )
        assert codes(src) == ["RL007"]

    def test_span_assigned_but_never_entered_fires(self):
        src = (
            "def work(registry):\n"
            "    timer = registry.span('fleet.scan')\n"
            "    do_work()\n"
        )
        assert codes(src) == ["RL007"]

    def test_with_span_is_clean(self):
        src = (
            "def work(registry):\n"
            "    with registry.span('fleet.scan'):\n"
            "        do_work()\n"
        )
        assert codes(src) == []

    def test_nested_with_spans_are_clean(self):
        src = (
            "def work(registry):\n"
            "    with registry.span('outer'), registry.span('inner'):\n"
            "        do_work()\n"
        )
        assert codes(src) == []

    def test_regex_match_span_is_out_of_scope(self):
        # re.Match.span() takes no args or an int group, never a string
        # literal -- the rule keys on the repro.obs signature.
        src = (
            "def bounds(match):\n"
            "    return match.span() + match.span(1)\n"
        )
        assert codes(src) == []


class TestRL008:
    STORAGE = "src/repro/data/storage.py"  # hot for RL008 but not RL004

    def test_copy_of_whole_buf_fires(self):
        src = (
            "def densify(self):\n"
            "    return self._buf.copy()\n"
        )
        assert codes(src, HOT) == ["RL008"]

    def test_asarray_of_whole_bits_fires(self):
        src = (
            "import numpy as np\n"
            "def densify(index):\n"
            "    return np.asarray(index._bits)\n"
        )
        assert codes(src, HOT) == ["RL008"]

    def test_tobytes_of_stripe_call_fires(self):
        src = (
            "def dump(store):\n"
            "    return store.stripe('item_bits').tobytes()\n"
        )
        assert codes(src, HOT) == ["RL008"]

    def test_storage_module_is_hot_for_this_rule(self):
        src = (
            "def densify(self):\n"
            "    return self._buf.copy()\n"
        )
        assert codes(src, self.STORAGE) == ["RL008"]

    def test_sliced_view_copy_is_clean(self):
        src = (
            "def block(self, a, b):\n"
            "    return self._buf[:, a:b].copy()\n"
        )
        assert codes(src, HOT) == []

    def test_other_receivers_are_clean(self):
        src = (
            "import numpy as np\n"
            "def f(counts, bits):\n"
            "    return np.asarray(counts), bits.copy(), counts.tobytes()\n"
        )
        assert codes(src, HOT) == []

    def test_cold_module_is_clean(self):
        src = (
            "def densify(self):\n"
            "    return self._buf.copy()\n"
        )
        assert codes(src) == []

    def test_oracle_function_is_exempt(self):
        src = (
            "def dense_counts_oracle(self):\n"
            '    """Row-wise oracle for the property suite."""\n'
            "    return self._buf.copy()\n"
        )
        assert codes(src, HOT) == []


# --------------------------------------------------------------------- #
# RL009 -- wire unpack paths must pass the checksum trust boundary
# --------------------------------------------------------------------- #


class TestRL009:
    def test_unpack_without_read_envelope_fires(self):
        src = (
            "import struct\n"
            "def unpack_counts(data):\n"
            "    n = struct.unpack_from('<Q', data, 8)[0]\n"
            "    return list(data[16 : 16 + n])\n"
        )
        # struct.unpack_from is not a wire decoder: it proves nothing
        # about checksums, so the function still fires
        assert codes(src) == ["RL009"]

    def test_unpack_calling_read_envelope_is_clean(self):
        src = (
            "def unpack_counts(data):\n"
            "    envelope = read_envelope(data)\n"
            "    return envelope.sections\n"
        )
        assert codes(src) == []

    def test_unpack_delegating_to_unpack_is_clean(self):
        src = (
            "def unpack_both(data):\n"
            "    return unpack_model(data), data\n"
        )
        assert codes(src) == []

    def test_unpack_delegating_to_from_envelope_is_clean(self):
        src = (
            "def _unpack_inner(data):\n"
            "    return _sketch_from_envelope(_verified(data))\n"
        )
        # *_from_envelope constructors only accept verified Envelopes
        assert codes(src) == []

    def test_section_decoder_taking_payload_is_out_of_scope(self):
        src = (
            "def unpack_array(payload, section):\n"
            "    return memoryview(payload)\n"
        )
        assert codes(src) == []

    def test_non_unpack_function_is_out_of_scope(self):
        src = "def parse(data):\n    return data[4:]\n"
        assert codes(src) == []


# --------------------------------------------------------------------- #
# RL010 -- swallowed failures and raw sleeps
# --------------------------------------------------------------------- #


class TestRL010:
    RESILIENCE = "src/repro/resilience/module.py"

    def test_swallowed_broad_except_fires_in_hot_module(self):
        src = (
            "def fan(shards):\n"
            "    try:\n"
            "        run(shards)\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert codes(src, HOT) == ["RL010"]
        assert codes(src, self.RESILIENCE) == ["RL010"]

    def test_bare_except_fires(self):
        src = "try:\n    run()\nexcept:\n    log()\n"
        assert codes(src, HOT) == ["RL010"]

    def test_broad_except_in_tuple_fires(self):
        src = (
            "try:\n"
            "    run()\n"
            "except (ValueError, Exception):\n"
            "    result = None\n"
        )
        assert codes(src, HOT) == ["RL010"]

    def test_reraising_handler_is_clean(self):
        src = (
            "try:\n"
            "    run()\n"
            "except Exception as exc:\n"
            "    raise ExecutorError(str(exc)) from exc\n"
        )
        assert codes(src, HOT) == []

    def test_narrow_except_is_clean(self):
        src = "try:\n    run()\nexcept ValueError:\n    result = None\n"
        assert codes(src, HOT) == []

    def test_cold_module_is_out_of_scope(self):
        src = "try:\n    run()\nexcept Exception:\n    pass\n"
        assert codes(src, "src/repro/data/io.py") == []

    def test_raw_sleep_fires_in_hot_module(self):
        src = "import time\ndef retry():\n    time.sleep(1.0)\n"
        assert codes(src, HOT) == ["RL010"]
        assert codes(src, self.RESILIENCE) == ["RL010"]

    def test_imported_sleep_fires(self):
        src = "from time import sleep\nsleep(0.1)\n"
        assert codes(src, self.RESILIENCE) == ["RL010"]

    def test_sleep_inside_sleep_backoff_is_the_blessed_home(self):
        src = (
            "import time\n"
            "def sleep_backoff(delay):\n"
            "    time.sleep(delay)\n"
        )
        assert codes(src, self.RESILIENCE) == []

    def test_sleep_in_cold_module_is_out_of_scope(self):
        src = "import time\ntime.sleep(1.0)\n"
        assert codes(src, "benchmarks/bench_outofcore.py") == []

    def test_reasoned_disable_suppresses(self):
        src = (
            "def fan():\n"
            "    try:\n"
            "        run()\n"
            "    except Exception:  "
            "# reprolint: disable=RL010(recorded and re-raised typed later)\n"
            "        record()\n"
        )
        assert codes(src, HOT) == []

    def test_reasonless_disable_does_not_suppress(self):
        src = (
            "def fan():\n"
            "    try:\n"
            "        run()\n"
            "    except Exception:  # reprolint: disable=RL010\n"
            "        record()\n"
        )
        assert sorted(codes(src, HOT)) == [REASONLESS_CODE, "RL010"]


# --------------------------------------------------------------------- #
# The escape hatch
# --------------------------------------------------------------------- #


class TestDisableComments:
    BAD = "import numpy as np\nrng = np.random.default_rng()\n"

    def test_trailing_disable_with_reason_suppresses(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()"
            "  # reprolint: disable=RL001(fixture rng, never published)\n"
        )
        assert codes(src) == []

    def test_preceding_comment_line_suppresses_next_line(self):
        src = (
            "import numpy as np\n"
            "# reprolint: disable=RL001(fixture rng, never published)\n"
            "rng = np.random.default_rng()\n"
        )
        assert codes(src) == []

    def test_reasonless_disable_does_not_suppress(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # reprolint: disable=RL001\n"
        )
        assert sorted(codes(src)) == [REASONLESS_CODE, "RL001"]

    def test_reasonless_disable_is_flagged_even_without_a_finding(self):
        src = "x = 1  # reprolint: disable=RL003\n"
        assert codes(src) == [REASONLESS_CODE]

    def test_wrong_code_does_not_suppress(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()"
            "  # reprolint: disable=RL002(not the rule that fired)\n"
        )
        assert codes(src) == ["RL001"]

    def test_multiple_codes_in_one_comment(self):
        src = (
            "import numpy as np\n"
            "def f(acc=[], rng=np.random.default_rng()):"
            "  # reprolint: disable=RL001(demo), RL005(demo)\n"
            "    pass\n"
        )
        assert codes(src) == []

    def test_syntax_error_reports_rl999(self):
        assert codes("def broken(:\n") == [SYNTAX_CODE]


# --------------------------------------------------------------------- #
# The real tree, the CLI, and the docs
# --------------------------------------------------------------------- #


REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRealTree:
    def test_src_and_benchmarks_are_clean(self):
        findings, n_files = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks"], RULES
        )
        assert n_files > 0
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_every_rule_is_documented(self):
        assert sorted(RULE_DOCS) == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
            "RL008", "RL009", "RL010",
        ]
        for code, (title, doc) in RULE_DOCS.items():
            assert title, code
            assert doc, code


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        assert main([str(target)]) == 0
        assert "1 file checked, clean" in capsys.readouterr().err

    def test_findings_exit_one_with_locations(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert f"{target}:2:" in out
        assert "RL001" in out

    def test_json_output_shape(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        assert main(["--format", "json", str(target)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        (finding,) = payload["findings"]
        assert finding["code"] == "RL001"
        assert finding["path"] == str(target)
        assert finding["line"] == 2
        assert set(finding) == {"path", "line", "col", "code", "message"}

    def test_empty_target_is_a_usage_error(self, tmp_path):
        assert main([str(tmp_path / "nothing")]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULE_DOCS:
            assert code in out


class TestMonitorRngRegression:
    """Satellite 1: every unseeded entry point routes through _resolve_rng."""

    def test_bootstrap_monitor_warns_through_resolve_rng(self):
        from repro.core.monitor import ChangeMonitor

        with pytest.warns(UserWarning, match="not reproducible"):
            monitor = ChangeMonitor(lambda d: None, n_boot=5)
        assert monitor.rng is not None

    def test_cheap_monitor_creates_no_generator(self):
        import warnings

        from repro.core.monitor import ChangeMonitor

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            monitor = ChangeMonitor(
                lambda d: None, n_boot=0, delta_threshold=1.0
            )
        assert monitor.rng is None
