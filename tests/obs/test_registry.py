"""Hypothesis properties and unit pins for the repro.obs registry.

The load-bearing property is **merge-invariance**: applying a stream of
metric operations to one registry gives exactly the snapshot obtained by
splitting the stream into contiguous chunks, applying each chunk to its
own registry, and merging in order. That is the algebra the executor
fan-outs rely on (per-shard registries summed back in shard order), so
it is pinned for arbitrary operation streams, including empty chunks
and histogram values landing exactly on bucket edges.
"""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_EDGES,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    enabled,
    metrics,
    use_registry,
)

# --------------------------------------------------------------------- #
# Operation-stream strategies
# --------------------------------------------------------------------- #

_NAMES = ("alpha", "beta", "gamma")

#: Values that stress the bucket boundaries: every edge exactly, plus
#: values straddling them and the overflow tail.
_EDGE_VALUES = sorted(
    {e for e in DEFAULT_EDGES}
    | {e - 1e-9 for e in DEFAULT_EDGES}
    | {e + 1e-9 for e in DEFAULT_EDGES}
    | {0.0, 1e7}
)

op_strategy = st.one_of(
    st.tuples(
        st.just("inc"),
        st.sampled_from(_NAMES),
        st.integers(min_value=0, max_value=10),
    ),
    st.tuples(
        st.just("gauge"),
        st.sampled_from(_NAMES),
        st.integers(min_value=-5, max_value=5).map(float),
    ),
    st.tuples(
        st.just("observe"),
        st.sampled_from(_NAMES),
        st.sampled_from(_EDGE_VALUES),
    ),
)

ops_strategy = st.lists(op_strategy, max_size=60)


def _apply(registry: MetricsRegistry, ops) -> None:
    for kind, name, value in ops:
        if kind == "inc":
            registry.inc(name, value)
        elif kind == "gauge":
            registry.gauge(name, value)
        else:
            registry.observe(name, value)


@st.composite
def chunked_ops(draw):
    """An operation stream plus a contiguous split into chunks."""
    ops = draw(ops_strategy)
    n_chunks = draw(st.integers(min_value=1, max_value=5))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=len(ops)),
                min_size=n_chunks - 1,
                max_size=n_chunks - 1,
            )
        )
    )
    bounds = [0, *cuts, len(ops)]
    chunks = [ops[a:b] for a, b in zip(bounds, bounds[1:])]
    return ops, chunks


class TestMergeProperty:
    @given(data=chunked_ops())
    @settings(max_examples=100, deadline=None)
    def test_chunked_merge_equals_single_registry(self, data):
        ops, chunks = data
        serial = MetricsRegistry()
        _apply(serial, ops)

        partials = []
        for chunk in chunks:
            local = MetricsRegistry()
            _apply(local, chunk)
            partials.append(local)
        merged = sum(partials, 0)
        assert isinstance(merged, MetricsRegistry)
        assert merged.snapshot() == serial.snapshot()

    @given(data=chunked_ops())
    @settings(max_examples=50, deadline=None)
    def test_absorb_matches_add(self, data):
        ops, chunks = data
        via_add = sum(
            [
                (lambda r: (_apply(r, c), r)[1])(MetricsRegistry())
                for c in chunks
            ],
            0,
        )
        sink = MetricsRegistry()
        for chunk in chunks:
            local = MetricsRegistry()
            _apply(local, chunk)
            sink.absorb(local)
        assert sink.snapshot() == via_add.snapshot()

    @given(ops=ops_strategy)
    @settings(max_examples=50, deadline=None)
    def test_snapshot_json_is_stable_and_round_trips(self, ops):
        registry = MetricsRegistry()
        _apply(registry, ops)
        text = registry.snapshot_json()
        assert text == registry.snapshot_json()
        assert json.loads(text) == json.loads(
            json.dumps(registry.snapshot(), sort_keys=True)
        )


class TestHistogramEdges:
    def test_value_on_an_edge_lands_in_that_edge_bucket(self):
        registry = MetricsRegistry()
        for edge in DEFAULT_EDGES:
            registry.observe("h", edge)
        counts = registry.snapshot()["histograms"]["h"]["counts"]
        # bisect_left: a value equal to edges[i] increments counts[i]
        # (buckets are upper-bound inclusive), overflow stays empty.
        assert counts == [1] * len(DEFAULT_EDGES) + [0]

    def test_sum_is_merge_order_independent(self):
        # naive float += is not associative; the exact-expansion
        # accumulator must make chunked merges bit-identical to serial
        # (hypothesis-found counterexample, pinned)
        values = [0.999999999, 0.999999999, 99.999999999]
        serial = MetricsRegistry()
        for v in values:
            serial.observe("h", v)
        left = MetricsRegistry()
        left.observe("h", values[0])
        right = MetricsRegistry()
        for v in values[1:]:
            right.observe("h", v)
        merged = left + right
        assert (
            merged.snapshot()["histograms"]["h"]["sum"]
            == serial.snapshot()["histograms"]["h"]["sum"]
        )

    def test_overflow_bucket(self):
        registry = MetricsRegistry()
        registry.observe("h", DEFAULT_EDGES[-1] + 1.0)
        counts = registry.snapshot()["histograms"]["h"]["counts"]
        assert counts[-1] == 1 and sum(counts) == 1

    def test_merge_requires_identical_edges(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.observe("h", 1.0, edges=(1.0, 2.0))
        b.observe("h", 1.0, edges=(1.0, 3.0))
        with pytest.raises(ValueError, match="edges"):
            a.absorb(b)

    def test_conflicting_edges_on_one_registry_raise(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0, edges=(1.0, 2.0))
        with pytest.raises(ValueError, match="edges"):
            registry.observe("h", 1.0, edges=(5.0, 6.0))


class TestSpans:
    def test_nested_spans_record_qualified_names(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        spans = registry.snapshot()["spans"]
        assert set(spans) == {"outer", "outer.inner"}
        assert spans["outer"]["count"] == 1
        assert spans["outer"]["total_s"] >= spans["outer.inner"]["total_s"]

    def test_span_stats_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        with a.span("s"):
            pass
        with b.span("s"):
            pass
        a.absorb(b)
        assert a.snapshot()["spans"]["s"]["count"] == 2


class TestNullRegistryAndContext:
    def test_ambient_default_is_disabled(self):
        assert metrics() is NULL_REGISTRY
        assert not enabled()

    def test_null_registry_is_inert(self):
        null = NullRegistry()
        null.inc("x")
        null.gauge("g", 1.0)
        null.observe("h", 2.0)
        with null.span("s"):
            pass
        assert null.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {},
        }

    def test_absorbing_null_is_a_no_op(self):
        registry = MetricsRegistry()
        registry.inc("x", 3)
        before = registry.snapshot()
        registry.absorb(NULL_REGISTRY)
        assert registry.snapshot() == before

    def test_use_registry_scopes_the_ambient_registry(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            assert enabled()
            metrics().inc("scoped")
        assert not enabled()
        assert registry.counter("scoped") == 1

    def test_use_registry_nests_and_restores(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            with use_registry(inner):
                metrics().inc("x")
            assert metrics() is outer
        assert inner.counter("x") == 1
        assert outer.counter("x") == 0

    def test_registry_pickles(self):
        registry = MetricsRegistry()
        registry.inc("x", 2)
        registry.observe("h", 3.0)
        with registry.span("s"):
            pass
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot() == registry.snapshot()

    def test_report_renders_every_section(self):
        registry = MetricsRegistry()
        registry.inc("calls", 2)
        registry.gauge("depth", 1.5)
        registry.observe("lat", 2.0)
        with registry.span("work"):
            pass
        text = registry.report()
        for needle in ("calls", "depth", "lat", "work"):
            assert needle in text

    def test_empty_report_placeholder(self):
        assert "no metrics recorded" in MetricsRegistry().report()
