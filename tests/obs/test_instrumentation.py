"""Engine instrumentation: backend-invariant counters, one source of truth.

The acceptance pin for the observability layer: running the same
sharded workload under the serial, thread, and process executors
produces **identical** counter and histogram snapshots — per-shard
registries merged in shard order equal serial collection exactly. Plus
smoke coverage that each wired subsystem (windows, monitor, fleet,
bootstrap, bitmap memo) actually emits, and that the legacy attributes
(``rows_sketched``, ``n_pruned``) are views of the same counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dtree_model import DtModel
from repro.core.lits import LitsModel
from repro.data.quest_basket import generate_basket
from repro.data.quest_classify import generate_classification
from repro.mining.tree.builder import TreeParams
from repro.obs import MetricsRegistry, use_registry
from repro.stats.bootstrap import deviation_significance
from repro.stream.executor import (
    sharded_partition_sketch,
    sharded_support_sketch,
)

EXECUTORS = ("serial", "thread", "process")


def _comparable(snapshot):
    """The deterministic sections: everything except span timings.

    ``storage.bytes_shipped`` is excluded: it tallies *transport* cost,
    which is backend-dependent by design — only a process fan pays to
    ship rows or buffers across the pickle boundary (serial/thread
    share by reference). The equality pin covers the computation
    counters; the shipping counter has its own per-backend assertions
    in the out-of-core suites.
    """
    counters = dict(snapshot["counters"])
    counters.pop("storage.bytes_shipped", None)
    return {
        "counters": counters,
        "gauges": snapshot["gauges"],
        "histograms": snapshot["histograms"],
        "span_names": sorted(snapshot["spans"]),
    }


class TestExecutorSnapshotEquality:
    @pytest.fixture(scope="class")
    def transactions(self):
        return list(
            generate_basket(
                120, n_items=20, avg_transaction_len=5, n_patterns=15,
                avg_pattern_len=3, seed=5,
            )
        )

    @pytest.mark.parametrize("n_shards", [1, 3, 5])
    def test_support_sketch_counters_match_across_backends(
        self, transactions, n_shards
    ):
        itemsets = [(0,), (1,), (0, 1), ()]
        snapshots = {}
        sketches = {}
        for executor in EXECUTORS:
            registry = MetricsRegistry()
            with use_registry(registry):
                sketches[executor] = sharded_support_sketch(
                    transactions, itemsets, 20,
                    n_shards=n_shards, executor=executor,
                )
            snapshots[executor] = registry.snapshot()
        base = _comparable(snapshots["serial"])
        assert base["counters"]["stream.shards.sketched"] == n_shards
        for executor in EXECUTORS[1:]:
            assert _comparable(snapshots[executor]) == base
            assert sketches[executor] == sketches["serial"]

    def test_empty_shards_still_merge_identically(self, transactions):
        # more shards than rows: trailing shards are empty, and their
        # (empty-row) observations must still merge in on every backend
        rows = transactions[:3]
        itemsets = [(0,), ()]
        snapshots = {}
        for executor in EXECUTORS:
            registry = MetricsRegistry()
            with use_registry(registry):
                sharded_support_sketch(
                    rows, itemsets, 20, n_shards=6, executor=executor
                )
            snapshots[executor] = registry.snapshot()
        base = _comparable(snapshots["serial"])
        assert base["counters"]["stream.shards.sketched"] == 6
        hist = base["histograms"]["stream.shard.rows"]
        assert hist["count"] == 6
        # 3 empty shards observed rows=0.0 (first bucket of the default
        # power-of-ten edges holds values <= 1)
        assert hist["counts"][0] >= 3
        for executor in EXECUTORS[1:]:
            assert _comparable(snapshots[executor]) == base

    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_partition_sketch_counters_match_across_backends(self, n_shards):
        dataset = generate_classification(200, function=1, seed=6)
        structure = DtModel.fit(
            dataset, TreeParams(max_depth=3, min_leaf=20)
        ).structure
        snapshots = {}
        # partition plans carry in-process memo state that does not
        # pickle, so (as with the fleet engine) the process backend is
        # out of scope here; serial vs thread pins the merge equality
        for executor in ("serial", "thread"):
            registry = MetricsRegistry()
            with use_registry(registry):
                sharded_partition_sketch(
                    dataset.slice_rows(0, len(dataset)),
                    structure.plan,
                    n_shards=n_shards,
                    executor=executor,
                )
            snapshots[executor] = registry.snapshot()
        assert _comparable(snapshots["thread"]) == _comparable(
            snapshots["serial"]
        )


class TestWindowCountersAreTheSourceOfTruth:
    def test_rows_sketched_attribute_and_counter_agree(self):
        from repro.stream.chunks import iter_chunks
        from repro.stream.windows import WindowManager

        txns = list(
            generate_basket(
                400, n_items=15, avg_transaction_len=4, n_patterns=10,
                avg_pattern_len=3, seed=7,
            )
        )
        registry = MetricsRegistry()
        with use_registry(registry):
            manager = WindowManager(
                [(0,), (1,)], 15, window_chunks=4, policy="sliding"
            )
            windows = list(manager.push_many(iter_chunks(txns, 100)))
        assert manager.rows_sketched == 400
        assert manager.windows_emitted == len(windows)
        counters = registry.snapshot()["counters"]
        # the legacy attributes are views of the same obs counters
        assert counters["stream.windows.rows_sketched"] == 400
        assert counters["stream.windows.emitted"] == len(windows)

    def test_attributes_work_without_an_active_registry(self):
        from repro.stream.windows import WindowManager

        manager = WindowManager([(0,)], 5, window_chunks=2)
        manager.push([(0,), (1,)])
        assert manager.rows_sketched == 2


class TestMonitorInstrumentation:
    def test_observe_latency_and_qualification_path_counters(self):
        from repro.stream import OnlineChangeMonitor

        txns = list(
            generate_basket(
                900, n_items=15, avg_transaction_len=4, n_patterns=10,
                avg_pattern_len=3, seed=8,
            )
        )

        def builder(d):
            return LitsModel.mine(d, 0.05, max_len=2)

        registry = MetricsRegistry()
        with use_registry(registry):
            monitor = OnlineChangeMonitor(
                builder, 15, window_size=300, n_boot=4,
                rng=np.random.default_rng(0),
            )
            observations = list(
                monitor.monitor_stream(
                    [txns[i : i + 300] for i in range(0, 900, 300)]
                )
            )
            monitor.close()
        snap = registry.snapshot()
        assert snap["counters"]["monitor.qualify.bootstrap"] == len(
            observations
        )
        assert snap["histograms"]["monitor.observe.latency_s"]["count"] == len(
            observations
        )
        assert "monitor.observe" in snap["spans"]
        # the bootstrap ran through the count-space engine (the monitor
        # compiles its plan from sketches, so the tell-tale counters are
        # the membership scans and the per-replicate GEMM tally)
        assert snap["counters"]["bootstrap.replicates.gemm"] >= 4

    def test_cheap_qualification_counts_separately(self):
        from repro.stream import OnlineChangeMonitor

        txns = list(
            generate_basket(
                600, n_items=15, avg_transaction_len=4, n_patterns=10,
                avg_pattern_len=3, seed=9,
            )
        )

        def builder(d):
            return LitsModel.mine(d, 0.05, max_len=2)

        registry = MetricsRegistry()
        with use_registry(registry):
            monitor = OnlineChangeMonitor(
                builder, 15, window_size=300, n_boot=0, delta_threshold=1e9
            )
            observations = list(
                monitor.monitor_stream(
                    [txns[i : i + 300] for i in range(0, 600, 300)]
                )
            )
            monitor.close()
        counters = registry.snapshot()["counters"]
        assert counters["monitor.qualify.cheap"] == len(observations)
        assert "monitor.qualify.bootstrap" not in counters


class TestFleetInstrumentation:
    @pytest.fixture(scope="class")
    def small_fleet(self):
        rng = np.random.default_rng(10)
        datasets = [
            generate_basket(
                150, n_items=20, avg_transaction_len=5, n_patterns=12,
                avg_pattern_len=3 + (i % 3), rng=rng,
            )
            for i in range(4)
        ]
        models = [LitsModel.mine(d, 0.05, max_len=2) for d in datasets]
        return models, datasets

    def test_matrix_attributes_view_the_obs_counters(self, small_fleet):
        from repro.fleet import FleetDeviationMatrix

        models, datasets = small_fleet
        registry = MetricsRegistry()
        with use_registry(registry):
            engine = FleetDeviationMatrix(models, datasets)
            matrix = engine.exhaustive()
        counters = registry.snapshot()["counters"]
        n_pairs = len(models) * (len(models) - 1) // 2
        assert matrix.n_scanned == n_pairs
        assert counters["fleet.pairs.scanned"] == matrix.n_scanned
        assert matrix.metrics["fleet.pairs.scanned"] == matrix.n_scanned
        assert counters["fleet.store.scans"] == len(models)
        report = matrix.to_report()
        assert report["metrics"]["fleet.pairs.scanned"] == matrix.n_scanned
        assert report["pruning"]["n_scanned"] == matrix.n_scanned

    def test_pruned_counter_matches_exact_mask(self, small_fleet):
        from repro.fleet import FleetDeviationMatrix

        models, datasets = small_fleet
        registry = MetricsRegistry()
        with use_registry(registry):
            engine = FleetDeviationMatrix(models, datasets)
            bounds = engine.bound_matrix()
            n = len(models)
            threshold = float(
                np.median(bounds[np.triu_indices(n, k=1)])
            )
            matrix = engine.pruned(threshold)
        counters = registry.snapshot()["counters"]
        off_diag = np.triu_indices(len(models), k=1)
        assert counters["fleet.pairs.pruned"] == matrix.n_pruned
        assert matrix.n_pruned == int((~matrix.exact_mask[off_diag]).sum())
        assert counters["fleet.bounds.filled"] == len(models) * (
            len(models) - 1
        ) // 2


class TestBootstrapInstrumentation:
    def test_one_pooled_scan_per_significance_call(self, basket_pair):
        d1, d2 = basket_pair

        def builder(d):
            return LitsModel.mine(d, 0.05, max_len=2)

        registry = MetricsRegistry()
        with use_registry(registry):
            deviation_significance(
                d1, d2, builder, n_boot=6, rng=np.random.default_rng(0)
            )
        counters = registry.snapshot()["counters"]
        assert counters["bootstrap.pooled_scans"] == 1
        assert counters["bootstrap.replicates.gemm"] >= 6

    def test_bitmap_memo_counters(self, small_transactions):
        registry = MetricsRegistry()
        with use_registry(registry):
            index = small_transactions.index
            index.clear_cache()  # other tests may have warmed the memo
            # (2, 3) has no memoised (2,) prefix yet -> one miss; the
            # second call resolves (2, 3, 4) from the now-cached (2, 3)
            # prefix with a single extra AND -> one hit
            index.support_counts([frozenset({2, 3})], cache=True)
            index.support_counts([frozenset({2, 3, 4})], cache=True)
        counters = registry.snapshot()["counters"]
        assert counters["bitmap.support_counts.calls"] == 2
        assert counters["bitmap.memo.misses"] == 1
        assert counters["bitmap.memo.hits"] == 1
