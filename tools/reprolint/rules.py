"""The repo-specific contract rules.

Every rule encodes an invariant one of the measurement-engine PRs
established (see ``CONTRIBUTING.md`` for the full origin stories):

========  ============================================================
RL001     no unseeded numpy randomness outside ``_resolve_rng``
RL002     sketch/plan merges must guard on ``counts_key`` (or
          equivalent) before touching counts
RL003     executor construction must be paired with deterministic
          release (``shutdown``/``close``/``with``; or an owning class
          that exposes ``close()``)
RL004     no per-row Python ``for`` loops in the designated hot modules
          (functions marked as property-test oracles are exempt)
RL005     no mutable default arguments; no ndarray-keyed memo dicts
RL006     no lambdas or locally-defined closures handed to
          process-backed executor fans (they do not pickle)
RL007     ``span(...)`` timing contexts must be entered with ``with``
          (a span that is never exited records nothing)
RL008     hot modules must not materialise a whole stripe-store view
          (``np.asarray``/``.copy()``/``.tobytes()`` on ``_bits``/
          ``_buf``/``stripe(...)``); bounded slices only
RL009     every whole-payload wire ``unpack*`` (first parameter
          ``data``) must verify checksums via ``read_envelope`` or
          delegate to a decoder that does
RL010     hot modules must not swallow broad exceptions (``except
          Exception``/``BaseException`` handlers must re-raise), and
          retry sleeps must route through the seeded backoff helper
          ``sleep_backoff``
========  ============================================================

Rules are deliberately syntactic and conservative: they flag the
patterns that bit this repo, not every theoretical variant. The escape
hatch (``# reprolint: disable=CODE(reason)``) exists precisely because
a heuristic can be wrong -- but it must say *why*.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Sequence

from tools.reprolint.engine import Finding, ModuleContext

# --------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------- #


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call targets, else ``None``."""
    return dotted_name(node.func)


def tail_name(node: ast.AST) -> str | None:
    """The last identifier of a call target (``c`` for ``a.b.c(...)``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _numpy_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(module aliases of ``numpy``, names bound to ``numpy.random``)."""
    numpy_names: set[str] = set()
    random_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_names.add(alias.asname or "numpy")
                elif alias.name == "numpy.random":
                    random_names.add(alias.asname or "numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        random_names.add(alias.asname or "random")
    return numpy_names, random_names


def _finding(
    ctx: ModuleContext, node: ast.AST, code: str, message: str
) -> Finding:
    return Finding(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
    )


# --------------------------------------------------------------------- #
# RL001 -- unseeded randomness
# --------------------------------------------------------------------- #


class UnseededRngRule:
    """Unseeded RNGs make bootstrap nulls irreproducible (PR 5).

    Flags ``np.random.default_rng()`` called with no seed, and *any* use
    of the legacy global-state API (``np.random.seed``,
    ``np.random.rand``, ...), anywhere but inside the single blessed
    ``_resolve_rng`` warn-path -- the one place an unseeded fallback is
    allowed, because it is the place that warns about it.
    """

    code = "RL001"
    title = "unseeded numpy randomness outside _resolve_rng"

    #: Legacy global-state entry points; even "seeded" uses mutate
    #: process-global state, which concurrent callers cannot reproduce.
    LEGACY = frozenset(
        {
            "seed",
            "rand",
            "randn",
            "randint",
            "random_sample",
            "ranf",
            "sample",
            "choice",
            "shuffle",
            "permutation",
            "RandomState",
        }
    )
    BLESSED_FUNCTION = "_resolve_rng"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        numpy_names, random_names = _numpy_aliases(ctx.tree)
        direct_default_rng = {
            alias.asname or alias.name
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ImportFrom)
            and node.module == "numpy.random"
            for alias in node.names
            if alias.name == "default_rng"
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            is_np_random = (
                len(parts) >= 2
                and (
                    (parts[0] in numpy_names and parts[1] == "random")
                    or parts[0] in random_names
                )
            )
            attr = parts[-1]
            if is_np_random and attr in self.LEGACY:
                yield _finding(
                    ctx,
                    node,
                    self.code,
                    f"legacy global-state RNG call np.random.{attr}(...); "
                    "use an explicit np.random.Generator (route unseeded "
                    "fallbacks through _resolve_rng)",
                )
                continue
            is_default_rng = (is_np_random and attr == "default_rng") or (
                len(parts) == 1 and parts[0] in direct_default_rng
            )
            if not is_default_rng or node.args or node.keywords:
                continue
            function = ctx.enclosing_function(node)
            if function is not None and function.name == self.BLESSED_FUNCTION:
                continue
            yield _finding(
                ctx,
                node,
                self.code,
                "unseeded np.random.default_rng(); published measurements "
                "must be reproducible -- pass a seed, or route the fallback "
                "through _resolve_rng so it warns",
            )


# --------------------------------------------------------------------- #
# RL002 -- unguarded sketch/plan merges
# --------------------------------------------------------------------- #


class UnguardedMergeRule:
    """Merging counts without a compatibility guard corrupts them (PR 3/4).

    Two counts vectors only combine if they measure the *same structure
    in the same region order* -- the ``counts_key`` contract. Any
    merge-like method on a sketch/plan class must either call a
    ``*check_mergeable*`` helper, compare ``counts_key``/``key``
    identities itself, or delegate to a sibling merge method that does.
    """

    code = "RL002"
    title = "sketch/plan merge without a counts_key-compatible guard"

    MERGE_NAMES = frozenset(
        {"__add__", "__iadd__", "__sub__", "__isub__", "merge", "merge_with", "combine"}
    )
    CLASS_MARKERS = ("Sketch", "Plan", "Counter", "Matrix")
    GUARD_ATTRS = frozenset({"counts_key", "key"})

    def _is_guarded(self, method: ast.FunctionDef) -> bool:
        for node in ast.walk(method):
            if isinstance(node, ast.Attribute):
                if node.attr in self.GUARD_ATTRS:
                    return True
                if "check_mergeable" in node.attr:
                    return True
                # delegation to a sibling merge method (e.g. __radd__
                # routing through __add__, which holds the real guard)
                if (
                    node.attr in self.MERGE_NAMES
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    return True
            elif isinstance(node, ast.Name) and "check_mergeable" in node.id:
                return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for klass in ast.walk(ctx.tree):
            if not isinstance(klass, ast.ClassDef):
                continue
            if not any(m in klass.name for m in self.CLASS_MARKERS):
                continue
            for method in klass.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name not in self.MERGE_NAMES:
                    continue
                if self._is_guarded(method):
                    continue
                yield _finding(
                    ctx,
                    method,
                    self.code,
                    f"{klass.name}.{method.name} combines counts without a "
                    "compatibility guard; call a *_check_mergeable helper or "
                    "compare counts_key before touching counts",
                )


# --------------------------------------------------------------------- #
# RL003 -- executor lifecycle
# --------------------------------------------------------------------- #


class ExecutorLifecycleRule:
    """Worker pools must be released deterministically (PR 5).

    A pool left to interpreter-exit teardown can race CPython's atexit
    machinery (the OSError race PR 5 fixed). Every executor constructed
    in a scope must be released in that scope (``with``, or a
    ``shutdown()``/``close()`` call, including via ``getattr``), or be
    stored on ``self`` of a class that exposes ``close``/``shutdown``
    for its owner to call.
    """

    code = "RL003"
    title = "executor constructed without a deterministic release path"

    FACTORY_NAMES = frozenset(
        {
            "ProcessPoolExecutor",
            "ThreadPoolExecutor",
            "ProcessExecutor",
            "ThreadExecutor",
            "SupervisedExecutor",
            "get_executor",
            "resolve_executor",
        }
    )
    RELEASE_NAMES = frozenset({"shutdown", "close"})

    def _is_factory_call(self, node: ast.Call) -> bool:
        name = tail_name(node.func)
        if name not in self.FACTORY_NAMES:
            return False
        # get_executor("serial") resolves to the poolless in-process
        # backend; there is nothing to release.
        if name in ("get_executor", "resolve_executor") and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and arg.value == "serial":
                return False
        return True

    def _scope_releases(self, scope: ast.AST) -> bool:
        for node in ast.walk(scope):
            if isinstance(node, ast.Attribute) and node.attr in self.RELEASE_NAMES:
                return True
            if isinstance(node, ast.Call):
                name = tail_name(node.func)
                if name in self.RELEASE_NAMES:
                    return True
                if name == "getattr" and any(
                    isinstance(arg, ast.Constant)
                    and arg.value in self.RELEASE_NAMES
                    for arg in node.args
                ):
                    return True
            if isinstance(node, (ast.With, ast.AsyncWith)):
                return True
        return False

    def _class_has_release(self, klass: ast.ClassDef | None) -> bool:
        if klass is None:
            return False
        return any(
            isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
            and member.name in self.RELEASE_NAMES
            for member in klass.body
        )

    def _assigns_to_self(self, ctx: ModuleContext, call: ast.Call) -> bool:
        parent = ctx.parent(call)
        targets: list[ast.expr] = []
        if isinstance(parent, ast.Assign):
            targets = parent.targets
        elif isinstance(parent, (ast.AnnAssign, ast.AugAssign)):
            targets = [parent.target]
        return any(
            isinstance(t, ast.Attribute)
            and isinstance(t.value, ast.Name)
            and t.value.id == "self"
            for t in targets
        )

    def _inside_with(self, ctx: ModuleContext, call: ast.Call) -> bool:
        node: ast.AST | None = call
        while node is not None:
            parent = ctx.parent(node)
            if isinstance(parent, ast.withitem) and parent.context_expr is node:
                return True
            node = parent
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and self._is_factory_call(node)):
                continue
            if self._inside_with(ctx, node):
                continue
            if self._assigns_to_self(ctx, node):
                if self._class_has_release(ctx.enclosing_class(node)):
                    continue
                yield _finding(
                    ctx,
                    node,
                    self.code,
                    f"{tail_name(node.func)} stored on self, but the class "
                    "defines no close()/shutdown() for its owner to release "
                    "the pool deterministically",
                )
                continue
            if self._scope_releases(ctx.enclosing_scope(node)):
                continue
            yield _finding(
                ctx,
                node,
                self.code,
                f"{tail_name(node.func)} is never released in this scope; "
                "use a with-block or pair it with shutdown()/close() (a "
                "pool reaped at interpreter exit can race atexit and "
                "raise OSError)",
            )


# --------------------------------------------------------------------- #
# RL004 -- per-row loops in hot modules
# --------------------------------------------------------------------- #


class PerRowLoopRule:
    """Hot paths must stay vectorised (PRs 1-5's core speedups).

    Flags ``for`` statements that iterate dataset/index rows inside the
    designated hot modules. Functions kept *deliberately* row-wise as
    property-test oracles are exempt when marked: name them
    ``*_loop``/``*_oracle`` or say "oracle" in their docstring.
    """

    code = "RL004"
    title = "per-row Python loop in a designated hot module"

    HOT_FILE_SUFFIXES = (
        "core/deviation.py",
        "core/partition_plan.py",
        "stats/resample_plan.py",
    )
    HOT_DIR_MARKERS = ("/stream/", "/fleet/")
    ORACLE_NAME_SUFFIXES = ("_loop", "_oracle")
    ROW_NAMES = frozenset({"rows", "transactions"})
    ROW_COUNT_ATTRS = frozenset({"n_rows", "n_transactions"})
    DATASETISH = re.compile(r"^(dataset\d*|data|rows|transactions|snapshot|pool|pooled)$")

    @classmethod
    def is_hot(cls, path: str) -> bool:
        posix = path.replace("\\", "/")
        if any(posix.endswith(suffix) for suffix in cls.HOT_FILE_SUFFIXES):
            return True
        return any(marker in posix for marker in cls.HOT_DIR_MARKERS)

    def _row_iterable(self, node: ast.expr) -> bool:
        """Does this expression iterate per row when used in ``for``?"""
        if isinstance(node, ast.Name):
            return node.id in self.ROW_NAMES or bool(
                re.match(r"^(dataset\d*|snapshot)$", node.id)
            )
        if isinstance(node, ast.Attribute):
            return node.attr in self.ROW_NAMES
        if isinstance(node, ast.Call):
            name = tail_name(node.func)
            if name == "enumerate" and node.args:
                return self._row_iterable(node.args[0])
            if name == "range" and node.args:
                inner = node.args[-1] if len(node.args) > 1 else node.args[0]
                if isinstance(inner, ast.Call):
                    inner_name = tail_name(inner.func)
                    if inner_name == "len" and inner.args:
                        target = inner.args[0]
                        if isinstance(target, ast.Name):
                            return bool(self.DATASETISH.match(target.id))
                        if isinstance(target, ast.Attribute):
                            return target.attr in self.ROW_NAMES
                if isinstance(inner, ast.Attribute):
                    return inner.attr in self.ROW_COUNT_ATTRS
        return False

    def _is_oracle(self, function: ast.FunctionDef | ast.AsyncFunctionDef | None) -> bool:
        if function is None:
            return False
        if function.name.endswith(self.ORACLE_NAME_SUFFIXES):
            return True
        docstring = ast.get_docstring(function) or ""
        return "oracle" in docstring.lower()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.is_hot(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.For):
                continue
            if not self._row_iterable(node.iter):
                continue
            if self._is_oracle(ctx.enclosing_function(node)):
                continue
            yield _finding(
                ctx,
                node,
                self.code,
                "per-row Python loop in a hot module; vectorise (bincount/"
                "searchsorted/GEMM), or mark the function as a property-"
                "test oracle (name it *_loop/*_oracle or say 'oracle' in "
                "its docstring)",
            )


# --------------------------------------------------------------------- #
# RL005 -- mutable defaults and ndarray-keyed memos
# --------------------------------------------------------------------- #


class MutableStateRule:
    """Two silent-corruption classics the memo-heavy engine cannot afford.

    (a) mutable default arguments are shared across calls; (b) a dict
    subscripted with an ndarray either crashes (ndarrays are unhashable)
    or, via an object key, memoises on identity that can be recycled --
    key memos on stable identities (``counts_key``, ``id()`` *with* a
    liveness guard, ``tobytes()``) instead.
    """

    code = "RL005"
    title = "mutable default argument / ndarray-keyed memo dict"

    ARRAY_FACTORIES = frozenset(
        {
            "array",
            "asarray",
            "asanyarray",
            "ascontiguousarray",
            "zeros",
            "zeros_like",
            "ones",
            "ones_like",
            "empty",
            "empty_like",
            "full",
            "full_like",
            "arange",
            "linspace",
            "concatenate",
            "stack",
            "vstack",
            "hstack",
        }
    )

    def _mutable_default(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call) and not node.args and not node.keywords:
            return tail_name(node.func) in ("list", "dict", "set")
        return False

    def _check_defaults(
        self, ctx: ModuleContext, function: ast.AST, args: ast.arguments
    ) -> Iterator[Finding]:
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if self._mutable_default(default):
                yield _finding(
                    ctx,
                    default,
                    self.code,
                    "mutable default argument is shared across calls; "
                    "default to None and create the container inside",
                )

    def _annotation_mentions(self, node: ast.expr | None, needles: tuple[str, ...]) -> bool:
        if node is None:
            return False
        text = ast.dump(node)
        return any(needle in text for needle in needles)

    def _scope_findings(
        self, ctx: ModuleContext, scope: ast.AST
    ) -> Iterator[Finding]:
        dict_names: set[str] = set()
        array_names: set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in (
                scope.args.posonlyargs + scope.args.args + scope.args.kwonlyargs
            ):
                if self._annotation_mentions(
                    arg.annotation, ("ndarray", "NDArray")
                ):
                    array_names.add(arg.arg)
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self._classify(target.id, node.value, dict_names, array_names)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if self._annotation_mentions(node.annotation, ("ndarray", "NDArray")):
                    array_names.add(node.target.id)
                elif self._annotation_mentions(node.annotation, ("dict", "Dict")):
                    dict_names.add(node.target.id)
        for node in ast.walk(scope):
            key: ast.expr | None = None
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id in dict_names
            ):
                key = node.slice
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("get", "setdefault", "pop")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in dict_names
                and node.args
            ):
                key = node.args[0]
            if (
                key is not None
                and isinstance(key, ast.Name)
                and key.id in array_names
            ):
                yield _finding(
                    ctx,
                    node,
                    self.code,
                    "dict keyed by an ndarray; arrays are unhashable (or "
                    "alias via recycled identities) -- key the memo on a "
                    "stable identity such as counts_key or tobytes()",
                )

    def _classify(
        self,
        name: str,
        value: ast.expr,
        dict_names: set[str],
        array_names: set[str],
    ) -> None:
        if isinstance(value, ast.Dict) or (
            isinstance(value, ast.Call)
            and tail_name(value.func) in ("dict", "defaultdict", "OrderedDict")
        ):
            dict_names.add(name)
        elif isinstance(value, ast.Call):
            func = value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self.ARRAY_FACTORIES
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
            ):
                array_names.add(name)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        scopes: list[ast.AST] = [ctx.tree]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
                yield from self._check_defaults(ctx, node, node.args)
            elif isinstance(node, ast.Lambda):
                yield from self._check_defaults(ctx, node, node.args)
        for scope in scopes:
            yield from self._scope_findings(ctx, scope)


# --------------------------------------------------------------------- #
# RL006 -- unpicklable workers on process fans
# --------------------------------------------------------------------- #


class UnpicklableWorkerRule:
    """Process pools pickle their workers; lambdas/closures do not (PR 4).

    Flags a lambda or a locally-defined function handed to ``.map`` /
    ``.submit`` of an executor that is *provably* process-backed in the
    same scope (constructed from ``ProcessPoolExecutor``,
    ``ProcessExecutor``, or ``get_executor("process")``), and lambdas
    passed alongside an ``executor="process"`` keyword.
    """

    code = "RL006"
    title = "lambda/closure handed to a process-backed executor fan"

    PROCESS_FACTORIES = frozenset({"ProcessPoolExecutor", "ProcessExecutor"})

    def _is_process_factory(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = tail_name(node.func)
        if name in self.PROCESS_FACTORIES:
            return True
        if name in ("get_executor", "resolve_executor") and node.args:
            arg = node.args[0]
            return isinstance(arg, ast.Constant) and arg.value == "process"
        return False

    def _local_function_names(self, scope: ast.AST) -> set[str]:
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return set()
        return {
            node.name
            for node in ast.walk(scope)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not scope
        }

    def _worker_violation(
        self, worker: ast.expr, local_functions: set[str]
    ) -> str | None:
        if isinstance(worker, ast.Lambda):
            return "a lambda"
        if isinstance(worker, ast.Name) and worker.id in local_functions:
            return f"locally-defined function {worker.id!r} (a closure)"
        return None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        # scope -> names bound to a provably process-backed executor
        process_names: dict[ast.AST, set[str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and self._is_process_factory(
                node.value
            ):
                scope = ctx.enclosing_scope(node)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        process_names.setdefault(scope, set()).add(target.id)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            scope = ctx.enclosing_scope(node)
            local_functions = self._local_function_names(scope)

            # fan(..., executor="process") with a lambda in the argument
            # list: the callee will pickle that worker downstream.
            for keyword in node.keywords:
                if (
                    keyword.arg == "executor"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value == "process"
                ):
                    for arg in node.args:
                        what = self._worker_violation(arg, local_functions)
                        if what is not None:
                            yield _finding(
                                ctx,
                                arg,
                                self.code,
                                f"{what} passed to a call fanning over the "
                                "process executor; process workers must be "
                                "importable top-level functions",
                            )

            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("map", "submit")
                and node.args
            ):
                continue
            receiver = node.func.value
            is_process = self._is_process_factory(receiver) or (
                isinstance(receiver, ast.Name)
                and receiver.id in process_names.get(scope, set())
            )
            if not is_process:
                continue
            what = self._worker_violation(node.args[0], local_functions)
            if what is not None:
                yield _finding(
                    ctx,
                    node.args[0],
                    self.code,
                    f"{what} handed to {node.func.attr}() of a process-"
                    "backed executor; it cannot be pickled to the workers "
                    "-- hoist it to a module-level function",
                )


# --------------------------------------------------------------------- #
# RL007 -- spans must be entered
# --------------------------------------------------------------------- #


class SpanContextRule:
    """A span only records its timing when its ``with`` block exits (PR 7).

    ``registry.span("name")`` returns a context manager; calling it
    without entering it starts no clock and records nothing, so the
    metric silently never appears. Flags any ``*.span("name")`` call
    (one string-literal argument -- the :mod:`repro.obs` signature,
    which also keeps ``re.Match.span(group)`` out of scope) that is not
    the context expression of a ``with`` statement.
    """

    code = "RL007"
    title = "span() call not entered with a with-statement"

    def _is_span_call(self, node: ast.Call) -> bool:
        if tail_name(node.func) != "span":
            return False
        # the obs signature: exactly one positional string literal
        return (
            len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        )

    def _inside_with(self, ctx: ModuleContext, call: ast.Call) -> bool:
        node: ast.AST | None = call
        while node is not None:
            parent = ctx.parent(node)
            if isinstance(parent, ast.withitem) and parent.context_expr is node:
                return True
            node = parent
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and self._is_span_call(node)):
                continue
            if self._inside_with(ctx, node):
                continue
            yield _finding(
                ctx,
                node,
                self.code,
                "span() returns a context manager and records its timing "
                "only on exit; enter it with a with-statement "
                "(`with registry.span(...)`) or the span never appears",
            )


# --------------------------------------------------------------------- #
# RL008 -- whole-stripe materialisation in hot modules
# --------------------------------------------------------------------- #


class StripeMaterializeRule:
    """Out-of-core scans must not densify a whole stripe store (PR 8).

    The mmap backend only stays out-of-core if hot paths read stripe
    views in place: one ``np.asarray``/``.copy()``/``.tobytes()`` over a
    whole store view silently pages the entire file into a private RAM
    buffer, and every "larger than RAM" guarantee is gone. Flags calls
    that materialise an *unsubscripted* store view (a ``_bits``/``_buf``
    attribute, or a ``.stripe(...)`` result) inside the hot modules;
    slices of a view (``buf[a:b].copy()``) are bounded and stay legal.
    Deliberately row-wise property-test oracles are exempt under RL004's
    marking convention (``*_loop``/``*_oracle`` names or "oracle" in the
    docstring).
    """

    code = "RL008"
    title = "whole-stripe materialisation in a hot module"

    #: the out-of-core storage layer is hot for this rule even though
    #: RL004's loop rule does not cover it
    HOT_EXTRA_SUFFIXES = (
        "data/storage.py",
        "data/transactions.py",
    )
    STORE_VIEW_TAILS = frozenset({"_bits", "_buf"})
    COPY_FUNCS = frozenset(
        {"array", "asarray", "asanyarray", "ascontiguousarray"}
    )
    COPY_METHODS = frozenset({"copy", "tobytes"})

    @classmethod
    def is_hot(cls, path: str) -> bool:
        posix = path.replace("\\", "/")
        if any(posix.endswith(suffix) for suffix in cls.HOT_EXTRA_SUFFIXES):
            return True
        return PerRowLoopRule.is_hot(path)

    def _is_store_view(self, node: ast.expr) -> bool:
        """An unsubscripted whole-store view expression."""
        if isinstance(node, (ast.Name, ast.Attribute)):
            return tail_name(node) in self.STORE_VIEW_TAILS
        if isinstance(node, ast.Call):
            return tail_name(node.func) == "stripe"
        return False

    def _is_oracle(
        self, function: ast.FunctionDef | ast.AsyncFunctionDef | None
    ) -> bool:
        if function is None:
            return False
        if function.name.endswith(PerRowLoopRule.ORACLE_NAME_SUFFIXES):
            return True
        docstring = ast.get_docstring(function) or ""
        return "oracle" in docstring.lower()

    def _violation(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if (
                func.attr in self.COPY_METHODS
                and self._is_store_view(func.value)
            ):
                return f".{func.attr}()"
            if (
                func.attr in self.COPY_FUNCS
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
                and node.args
                and self._is_store_view(node.args[0])
            ):
                return f"np.{func.attr}(...)"
        return None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.is_hot(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            what = self._violation(node)
            if what is None:
                continue
            if self._is_oracle(ctx.enclosing_function(node)):
                continue
            yield _finding(
                ctx,
                node,
                self.code,
                f"{what} over a whole stripe view materialises the full "
                "store in RAM, defeating the out-of-core backend; operate "
                "on bounded slices (row blocks / byte ranges), or mark "
                "the function as a property-test oracle",
            )


# --------------------------------------------------------------------- #
# RL009 -- wire unpack paths must pass the checksum trust boundary
# --------------------------------------------------------------------- #


class WireTrustBoundaryRule:
    """Wire decoders must verify checksums before constructing (PR 9).

    ``repro.wire.format.read_envelope`` is the single trust boundary of
    the wire format: magic, version, kind, framing, and every section
    CRC32 are checked there *before* any caller sees payload bytes. A
    decoder that builds objects from raw bytes without going through it
    happily constructs garbage from corrupted or foreign input.

    The convention the wire package pins: a whole-payload decoder is a
    function named ``unpack*`` whose first parameter is ``data``
    (untrusted bytes). Every such function must call ``read_envelope``
    itself, or delegate to another ``unpack*`` function (itself subject
    to this rule) or a ``*from_envelope`` constructor (which only
    accepts already-verified ``Envelope`` objects). Section-level
    decoders take ``payload`` (post-verification bytes) as their first
    parameter and are out of scope by that naming.
    """

    code = "RL009"
    title = "wire unpack path skipping the read_envelope trust boundary"

    NAME_RE = re.compile(r"^_?unpack")
    UNTRUSTED_FIRST_ARG = "data"

    def _first_arg(
        self, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> str | None:
        args = function.args.posonlyargs + function.args.args
        names = [a.arg for a in args if a.arg not in ("self", "cls")]
        return names[0] if names else None

    def _is_trusted(
        self, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            if tail_name(node.func) == "read_envelope":
                return True
            # delegation must target a repo decoder by bare name --
            # struct.unpack_from and friends (attribute calls) prove
            # nothing about checksums
            if isinstance(node.func, ast.Name) and (
                self.NAME_RE.match(node.func.id)
                or node.func.id.endswith("from_envelope")
            ):
                return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self.NAME_RE.match(node.name):
                continue
            if self._first_arg(node) != self.UNTRUSTED_FIRST_ARG:
                continue
            if self._is_trusted(node):
                continue
            yield _finding(
                ctx,
                node,
                self.code,
                f"{node.name}() decodes untrusted payload bytes without "
                "read_envelope; every wire unpack path must verify the "
                "section checksums before constructing objects (call "
                "read_envelope, or delegate to an unpack*/[*_]from_envelope "
                "decoder that does)",
            )


# --------------------------------------------------------------------- #
# RL010 -- swallowed failures and raw sleeps in hot modules
# --------------------------------------------------------------------- #


class SwallowedFailureRule:
    """Failures in hot modules must stay typed and loud (PR 10).

    Two contracts from the resilience layer. First, an ``except
    Exception`` / ``except BaseException`` handler in a hot module must
    re-raise somewhere in its body: a broad handler that swallows turns
    a dead worker or a poisoned shard into a silently wrong fan result,
    the exact failure mode :class:`SupervisedExecutor` exists to
    prevent (record-then-typed-raise paths carry a reasoned disable).
    Second, sleeping outside the blessed ``sleep_backoff`` helper is
    how unseeded, unreproducible retry pacing sneaks in -- every retry
    delay must come from the seeded ``backoff_delay``.

    The hot scope is RL004's (designated core files plus ``/stream/``
    and ``/fleet/``) extended with ``/resilience/`` itself.
    """

    code = "RL010"
    title = "swallowed broad exception or raw sleep in a hot module"

    BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})
    SLEEP_HOME = "sleep_backoff"

    @classmethod
    def is_hot(cls, path: str) -> bool:
        posix = path.replace("\\", "/")
        return PerRowLoopRule.is_hot(posix) or "/resilience/" in posix

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        kind = handler.type
        if kind is None:
            return True
        names = kind.elts if isinstance(kind, ast.Tuple) else [kind]
        return any(
            tail_name(name) in self.BROAD_EXCEPTIONS for name in names
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.is_hot(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                if not self._is_broad(node):
                    continue
                if any(
                    isinstance(inner, ast.Raise)
                    for stmt in node.body
                    for inner in ast.walk(stmt)
                ):
                    continue
                yield _finding(
                    ctx,
                    node,
                    self.code,
                    "broad exception handler swallows the failure in a hot "
                    "module; re-raise a typed repro error (or record and "
                    "re-raise later, with a reasoned disable)",
                )
            elif isinstance(node, ast.Call) and tail_name(node.func) == "sleep":
                function = ctx.enclosing_function(node)
                if function is not None and function.name == self.SLEEP_HOME:
                    continue
                yield _finding(
                    ctx,
                    node,
                    self.code,
                    "raw sleep in a hot module; retry pacing must route "
                    "through repro.resilience.backoff.sleep_backoff with a "
                    "seeded backoff_delay",
                )


RULES: Sequence[object] = (
    UnseededRngRule(),
    UnguardedMergeRule(),
    ExecutorLifecycleRule(),
    PerRowLoopRule(),
    MutableStateRule(),
    UnpicklableWorkerRule(),
    SpanContextRule(),
    StripeMaterializeRule(),
    WireTrustBoundaryRule(),
    SwallowedFailureRule(),
)

#: code -> (title, docstring) for --list-rules and the docs.
RULE_DOCS: dict[str, tuple[str, str]] = {
    rule.code: (rule.title, (rule.__doc__ or "").strip()) for rule in RULES
}
