"""reprolint: the repo-specific static contract checker.

Run it with ``python -m tools.reprolint src benchmarks``; see
``CONTRIBUTING.md`` ("Invariants the linter enforces") for each rule's
origin and the suppression policy.
"""

from tools.reprolint.engine import (
    Finding,
    ModuleContext,
    REASONLESS_CODE,
    SYNTAX_CODE,
    lint_paths,
    lint_source,
)
from tools.reprolint.rules import RULE_DOCS, RULES

__all__ = [
    "Finding",
    "ModuleContext",
    "REASONLESS_CODE",
    "RULE_DOCS",
    "RULES",
    "SYNTAX_CODE",
    "lint_paths",
    "lint_source",
]
