"""The reprolint engine: file walking, parsing, and suppression handling.

reprolint is a repo-specific static contract checker. Generic linters
(ruff, mypy) cannot know that *this* codebase promises seeded bootstrap
nulls, ``counts_key``-guarded sketch merges, deterministic executor
shutdown, vectorised hot paths, and picklable process-fan workers -- the
invariants PRs 1-5 established by hand. Each rule in
:mod:`tools.reprolint.rules` encodes one of those contracts as an AST
check; this module owns everything rule-agnostic:

* walking the given paths and parsing each ``*.py`` file once;
* parsing ``# reprolint: disable=CODE(reason)`` suppression comments --
  a *reason is mandatory*: a reason-less disable does not suppress and
  is itself reported as :data:`REASONLESS_CODE`;
* collecting, de-duplicating, and ordering findings.

A disable comment on the finding's own line (trailing) or on a
comment-only line directly above it suppresses that code for that line
only. Multiple codes separate with commas::

    rng = np.random.default_rng()  # reprolint: disable=RL001(demo of the warn-free path)

    # reprolint: disable=RL004(documented O(rows) fallback), RL005(keys are copies)
    for t in transactions:
        ...
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Pseudo-rule reported for a disable comment that carries no reason.
REASONLESS_CODE = "RL000"

#: Pseudo-rule reported for a file the parser rejects.
SYNTAX_CODE = "RL999"

_DISABLE_RE = re.compile(r"reprolint:\s*disable\s*=\s*(?P<spec>.+)$")
_CODE_RE = re.compile(r"(?P<code>RL\d{3})\s*(?:\((?P<reason>[^()]*)\))?")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Everything a rule gets to look at for one file."""

    path: str
    tree: ast.Module
    source: str

    def __post_init__(self) -> None:
        # Parent links let rules climb from any node to its enclosing
        # function/class/statement without each rule re-walking the tree.
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child._reprolint_parent = node  # type: ignore[attr-defined]

    def parent(self, node: ast.AST) -> ast.AST | None:
        return getattr(node, "_reprolint_parent", None)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The nearest function definition the node sits inside, if any."""
        current = self.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parent(current)
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        """The nearest class definition the node sits inside, if any."""
        current = self.parent(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            current = self.parent(current)
        return None

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """The function owning ``node``, or the module for top-level code."""
        return self.enclosing_function(node) or self.tree


@dataclass(frozen=True)
class _Disable:
    """One parsed suppression: the code, its reason, and where it was."""

    code: str
    reason: str | None
    line: int


def parse_disables(source: str) -> dict[int, dict[str, _Disable]]:
    """Map *target line* -> {code: disable} for every suppression comment.

    A trailing comment targets its own line; a comment-only line targets
    the next line (the statement it annotates). Unparseable comments are
    ignored -- they suppress nothing, so they can never hide a finding.
    """
    by_line: dict[int, dict[str, _Disable]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return by_line
    lines = source.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DISABLE_RE.search(token.string)
        if match is None:
            continue
        comment_line = token.start[0]
        prefix = lines[comment_line - 1][: token.start[1]]
        target = comment_line if prefix.strip() else comment_line + 1
        for code_match in _CODE_RE.finditer(match.group("spec")):
            reason = code_match.group("reason")
            reason = reason.strip() if reason is not None else None
            entry = _Disable(
                code=code_match.group("code"),
                reason=reason or None,
                line=comment_line,
            )
            by_line.setdefault(target, {})[entry.code] = entry
    return by_line


def lint_source(
    source: str, path: str, rules: Sequence[object]
) -> list[Finding]:
    """Run every rule over one file's source, honouring suppressions."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=SYNTAX_CODE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = ModuleContext(path=path, tree=tree, source=source)
    disables = parse_disables(source)

    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(ctx))

    findings: list[Finding] = []
    used: set[tuple[int, str]] = set()
    for finding in raw:
        disable = disables.get(finding.line, {}).get(finding.code)
        if disable is not None and disable.reason:
            used.add((disable.line, disable.code))
            continue
        findings.append(finding)

    # A reason-less disable never suppresses; it is a finding of its own,
    # whether or not anything fired on its target line.
    for per_line in disables.values():
        for disable in per_line.values():
            if disable.reason is None:
                findings.append(
                    Finding(
                        path=path,
                        line=disable.line,
                        col=0,
                        code=REASONLESS_CODE,
                        message=(
                            f"disable={disable.code} without a reason; write "
                            f"# reprolint: disable={disable.code}(<why this "
                            "violation is safe here>)"
                        ),
                    )
                )
    return sorted(set(findings))


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``*.py`` file under the given files/directories."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" in candidate.parts:
                    continue
                if any(part.startswith(".") for part in candidate.parts):
                    continue
                yield candidate


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[object]
) -> tuple[list[Finding], int]:
    """Lint every python file under ``paths``; returns (findings, n_files)."""
    findings: list[Finding] = []
    n_files = 0
    for path in iter_python_files(paths):
        n_files += 1
        source = path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, str(path), rules))
    return sorted(findings), n_files
