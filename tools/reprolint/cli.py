"""Command-line front end: ``python -m tools.reprolint src benchmarks``.

Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from tools.reprolint.engine import lint_paths
from tools.reprolint.rules import RULE_DOCS, RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "repo-specific static contract checker for the measurement "
            "engine (seeded RNGs, guarded merges, executor lifecycles, "
            "vectorised hot paths, picklable process workers)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its documentation and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, (title, doc) in sorted(RULE_DOCS.items()):
            print(f"{code}: {title}")
            for line in doc.splitlines():
                print(f"    {line}")
            print()
        return 0

    paths = args.paths or ["src", "benchmarks"]
    findings, n_files = lint_paths(paths, RULES)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "files": n_files,
                    "findings": [f.to_json() for f in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        noun = "file" if n_files == 1 else "files"
        status = (
            "clean"
            if not findings
            else f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
        )
        print(f"reprolint: {n_files} {noun} checked, {status}", file=sys.stderr)

    if n_files == 0:
        print(f"reprolint: no python files under {paths!r}", file=sys.stderr)
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
