"""Developer tooling for this repository (not shipped with the package)."""
